#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace gbda::net {

Result<GbdaClient> GbdaClient::Connect(const std::string& host,
                                       uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("client: bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  GbdaClient client;
  client.fd_ = fd;
  return client;
}

void GbdaClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status GbdaClient::SendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> GbdaClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IOError("client: connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Status GbdaClient::Ping(uint64_t request_id) {
  PingRequest req;
  req.request_id = request_id;
  GBDA_RETURN_IF_ERROR(SendBytes(EncodePingRequest(req)));
  Result<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != MessageType::kPingResponse) {
    return Status::Internal("client: unexpected response type to ping");
  }
  Result<PingResponse> resp = DecodePingResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (resp->request_id != request_id) {
    return Status::Internal("client: ping response id mismatch");
  }
  return Status::OK();
}

Result<TopKResponse> GbdaClient::QueryTopK(const TopKRequest& request) {
  GBDA_RETURN_IF_ERROR(SendBytes(EncodeTopKRequest(request)));
  Result<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != MessageType::kTopKResponse) {
    return Status::Internal("client: unexpected response type to top-k");
  }
  return DecodeTopKResponse(frame->payload);
}

Result<MutateResponse> GbdaClient::Mutate(const MutateRequest& request) {
  GBDA_RETURN_IF_ERROR(SendBytes(EncodeMutateRequest(request)));
  Result<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != MessageType::kMutateResponse) {
    return Status::Internal("client: unexpected response type to mutate");
  }
  return DecodeMutateResponse(frame->payload);
}

Result<StatsResponse> GbdaClient::Stats(uint64_t request_id) {
  StatsRequest req;
  req.request_id = request_id;
  GBDA_RETURN_IF_ERROR(SendBytes(EncodeStatsRequest(req)));
  Result<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != MessageType::kStatsResponse) {
    return Status::Internal("client: unexpected response type to stats");
  }
  return DecodeStatsResponse(frame->payload);
}

}  // namespace gbda::net
