/// \file server.h
/// The network serving front-end (docs/ARCHITECTURE.md, "Network serving"):
/// a TCP server speaking the length-prefixed binary protocol of
/// net/codec.h in front of either serving backend — a frozen GbdaService
/// (optionally over a mapped v3 arena) or a DynamicGbdaService (mutation
/// requests commit and swap snapshots). tools/gbda_serverd is a thin main
/// around this class; tests drive it in-process on loopback ephemeral
/// ports.
///
/// Threading model:
///   - One I/O thread owns every socket: a poll() loop over the listener, a
///     self-pipe wakeup and all connections (non-blocking fds, per-
///     connection FrameDecoder and outbox). It decodes requests, performs
///     ADMISSION — a bounded request queue; past the bound the request is
///     answered with a typed WireStatus::kOverloaded instead of queueing
///     unboundedly — and writes every response (single writer per socket,
///     send() with MSG_NOSIGNAL so a client that disconnected mid-response
///     costs an EPIPE, never a fatal SIGPIPE).
///   - Worker threads pop the queue and run the ADAPTIVE MICRO-BATCHER:
///     take one request, coalesce up to max_batch queued requests with the
///     same batch key (message type, k, SearchOptions bytes), optionally
///     lingering for late arrivals, then execute the whole group as ONE
///     QueryTopKBatch call — so the cross-shard pruning-bound sharing
///     amortizes across co-batched queries. The linger budget adapts: a
///     full batch doubles it (load is high, waiting buys coalescing), a
///     singleton batch halves it toward zero (idle traffic must not pay
///     added latency). Expired requests are answered kDeadlineExceeded
///     without executing.
///
/// Shutdown is graceful: admission switches to kShuttingDown, workers
/// drain the queue (every admitted request is answered), outboxes get a
/// bounded flush, then all sockets close.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/codec.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"

namespace gbda::net {

/// Knobs of the serving front-end.
struct ServerConfig {
  /// Listen address; the default binds loopback only (tests, single-host
  /// benches). Use "0.0.0.0" to serve externally.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Admission bound: requests queued for execution. At the bound new
  /// requests are rejected with WireStatus::kOverloaded (backpressure)
  /// rather than queued — queue delay past the bound would blow every
  /// deadline anyway.
  size_t max_queue = 256;
  /// Micro-batch coalescing cap (>= 1; 1 disables coalescing).
  size_t max_batch = 16;
  /// Upper bound of the adaptive linger window a worker may wait for
  /// late-arriving batchable requests. The effective linger starts at 0 and
  /// adapts between 0 and this cap (see the class comment).
  uint64_t max_linger_micros = 200;
  /// Deadline applied when a request carries deadline_ms == 0. A request
  /// that exceeds its deadline while queued is answered
  /// WireStatus::kDeadlineExceeded without executing.
  uint64_t default_deadline_ms = 2000;
  /// Batch executor threads. One keeps request execution strictly FIFO
  /// (and mutation ordering deterministic); more overlap independent
  /// batches on the service's thread pool.
  size_t num_workers = 1;
};

/// TCP front-end over one serving backend. Start with Serve(); the server
/// runs on background threads until Shutdown() (the destructor shuts down
/// too). Thread-safe: stats()/port()/Pause/ResumeDraining may be called
/// from any thread.
class GbdaServer {
 public:
  /// Serves a frozen corpus. Mutation requests answer kUnsupported;
  /// responses report generation 0. `service` must outlive the server.
  static Result<std::unique_ptr<GbdaServer>> Serve(GbdaService* service,
                                                   const ServerConfig& config);
  /// Serves a dynamic corpus: mutation requests commit through the
  /// service's serialized mutation API and report the published snapshot
  /// generation; every query response carries the generation it was served
  /// against. `service` must outlive the server.
  static Result<std::unique_ptr<GbdaServer>> Serve(DynamicGbdaService* service,
                                                   const ServerConfig& config);

  ~GbdaServer();
  GbdaServer(const GbdaServer&) = delete;
  GbdaServer& operator=(const GbdaServer&) = delete;

  /// Graceful stop (idempotent): reject new work, drain admitted requests,
  /// flush outboxes, join threads, close sockets.
  void Shutdown();

  /// The bound TCP port (the ephemeral pick when config.port was 0).
  uint16_t port() const { return port_; }

  /// Snapshot of the server counters (see WireServerStats), assembled from
  /// sharded lock-free counters: no mutex is taken anywhere on the request
  /// path, and the snapshot is exact once traffic quiesces (a consistent
  /// lower bound while it runs). stage_latency is filled in obs::QueryStage
  /// order from the server's per-stage histograms.
  WireServerStats stats() const;

  /// Appends the server's gbda_server_* counter families and the
  /// gbda_stage_latency_micros{stage=...} histograms for a registry
  /// collector (tools/gbda_serverd registers this with the global registry
  /// behind --metrics-port).
  void CollectMetrics(const std::string& labels,
                      std::vector<obs::MetricFamily>* out) const;

  /// Admin drain gate: while paused, admission keeps accepting (and keeps
  /// rejecting past the queue bound) but workers do not pop, so queued
  /// requests accumulate. Used by quiesce-style operations and by the
  /// overload/batching tests to open a deterministic coalescing window.
  void PauseDraining();
  void ResumeDraining();

 private:
  struct Backend {
    GbdaService* frozen = nullptr;
    DynamicGbdaService* dynamic = nullptr;
  };

  /// One admitted request waiting for a worker.
  struct Pending {
    uint64_t conn_id = 0;
    MessageType type = MessageType::kTopKRequest;
    TopKRequest topk;
    MutateRequest mutate;
    std::chrono::steady_clock::time_point arrival;
    uint64_t deadline_ms = 0;
    /// I/O-thread time from frame dispatch to admission (trace span,
    /// stamped into the response).
    uint64_t admission_micros = 0;
  };

  /// Per-connection state; owned and touched exclusively by the I/O
  /// thread.
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string outbox;
    size_t outbox_sent = 0;
  };

  GbdaServer(Backend backend, const ServerConfig& config);
  static Result<std::unique_ptr<GbdaServer>> StartInternal(
      Backend backend, const ServerConfig& config);
  Status Listen();

  void IoLoop();
  void AcceptPending();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  void CloseConnection(uint64_t conn_id);
  /// Dispatches one decoded frame on the I/O thread: answers
  /// ping/stats/invalid/overload immediately, queues query and mutation
  /// work for the workers. Returns false when the connection must close
  /// (framing violation).
  bool DispatchFrame(uint64_t conn_id, Frame frame);
  /// Appends a response frame to the connection's outbox (no-op when the
  /// connection is gone) and counts it. I/O thread only.
  void QueueResponse(uint64_t conn_id, std::string frame_bytes);
  void WakeIo();

  void WorkerLoop();
  /// Pops one adaptive micro-batch (see the class comment). Empty result
  /// means "shutting down and the queue is drained". `coalesce_micros`
  /// reports the time from the first pop to the batch being finalized — the
  /// batch-stage trace span shared by every request in the batch.
  std::vector<Pending> NextBatch(uint64_t* linger_micros,
                                 uint64_t* coalesce_micros)
      GBDA_EXCLUDES(queue_mutex_);
  /// Moves every queued top-k request whose batch key equals `key` into
  /// `batch` (up to config_.max_batch), preserving queue order.
  void TakeCompatible(const std::string& key, std::vector<Pending>* batch)
      GBDA_REQUIRES(queue_mutex_);
  void ExecuteTopKBatch(std::vector<Pending> batch, uint64_t coalesce_micros);
  void ExecuteMutation(Pending request);
  /// Hands a finished response frame from a worker to the I/O thread.
  void PostResponse(uint64_t conn_id, std::string frame_bytes);

  Backend backend_;
  const ServerConfig config_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Request queue + drain gate (workers and the I/O thread's admission).
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ GBDA_GUARDED_BY(queue_mutex_);
  bool draining_paused_ GBDA_GUARDED_BY(queue_mutex_) = false;
  std::atomic<bool> stopping_{false};
  /// Set by Shutdown() once every worker has joined: the signal that no
  /// further responses will be posted, so the I/O thread may switch to its
  /// bounded outbox flush. Gating the flush on this (not on stopping_)
  /// guarantees every admitted request's response is still sent.
  std::atomic<bool> workers_done_{false};

  // Worker -> I/O thread response handoff.
  Mutex responses_mutex_;
  std::vector<std::pair<uint64_t, std::string>> posted_responses_
      GBDA_GUARDED_BY(responses_mutex_);

  // I/O-thread-only connection table.
  std::unordered_map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;

  // Server counters: sharded relaxed-atomic (obs::Counter), so neither the
  // I/O thread nor the workers ever take a lock to count — the per-request
  // stats mutex this replaced was the serving path's only remaining
  // cross-thread lock outside the queue itself.
  obs::Counter connections_opened_;
  obs::Counter connections_closed_;
  obs::Counter frames_received_;
  obs::Counter decode_errors_;
  obs::Counter requests_accepted_;
  obs::Counter rejected_overloaded_;
  obs::Counter rejected_deadline_;
  obs::Counter rejected_invalid_;
  obs::Counter responses_sent_;
  obs::Counter batches_executed_;
  std::atomic<uint64_t> queue_depth_peak_{0};  // CAS-max
  /// batch_size_histogram[i] counts executed micro-batches of size i+1
  /// (sized once in the constructor; relaxed adds thereafter).
  std::vector<std::atomic<uint64_t>> batch_size_histogram_;
  /// Per-stage latency histograms (microseconds), indexed by
  /// obs::QueryStage: the scrape surface's admission/queue/batch/scan
  /// families and the source of WireServerStats::stage_latency.
  obs::ConcurrentHistogram stage_latency_[obs::kNumQueryStages];

  std::once_flag shutdown_once_;
};

}  // namespace gbda::net
