/// \file client.h
/// Blocking TCP client for the gbda_serverd wire protocol (net/codec.h).
/// One connection per client; calls are synchronous request/response. Not
/// thread-safe for concurrent calls on one instance — the load generator
/// (bench/bench_loadgen.cc) splits send and receive across two threads via
/// the raw SendBytes/ReadFrame surface instead, matching request ids.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/codec.h"

namespace gbda::net {

class GbdaClient {
 public:
  GbdaClient() = default;
  ~GbdaClient() { Close(); }
  GbdaClient(GbdaClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
    decoder_ = std::move(other.decoder_);
  }
  GbdaClient& operator=(GbdaClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      decoder_ = std::move(other.decoder_);
    }
    return *this;
  }
  GbdaClient(const GbdaClient&) = delete;
  GbdaClient& operator=(const GbdaClient&) = delete;

  /// Connects to an IPv4 address ("127.0.0.1") and port.
  static Result<GbdaClient> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // -- Synchronous request/response ----------------------------------------

  Status Ping(uint64_t request_id = 0);
  Result<TopKResponse> QueryTopK(const TopKRequest& request);
  Result<MutateResponse> Mutate(const MutateRequest& request);
  Result<StatsResponse> Stats(uint64_t request_id = 0);

  // -- Raw surface (protocol tests, pipelined load generation) -------------

  /// Writes raw bytes to the socket (MSG_NOSIGNAL — a dead peer returns an
  /// error, never raises SIGPIPE).
  Status SendBytes(const std::string& bytes);
  /// Blocks until one complete frame arrives (or the peer closes / the
  /// stream is malformed).
  Result<Frame> ReadFrame();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace gbda::net
