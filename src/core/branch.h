#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "graph/graph.h"

namespace gbda {

/// A branch B(v) = {L(v), N(v)} (Definition 2): the label of vertex v plus
/// the sorted multiset of labels of its incident edges. Virtual (epsilon)
/// edges do not actually exist and are excluded from N(v); a virtual vertex
/// contributes a branch rooted at the virtual label.
struct Branch {
  LabelId root = kVirtualLabel;
  std::vector<LabelId> edge_labels;  // ascending

  /// Branch isomorphism (Definition 3) is exact equality of root label and
  /// edge-label multiset; the lexicographic order is the storage order of the
  /// branch multiset (the paper's std::lexicographical_compare ordering).
  bool operator==(const Branch& o) const {
    return root == o.root && edge_labels == o.edge_labels;
  }
  bool operator!=(const Branch& o) const { return !(*this == o); }
  bool operator<(const Branch& o) const {
    return std::tie(root, edge_labels) < std::tie(o.root, o.edge_labels);
  }
  bool operator>(const Branch& o) const { return o < *this; }
  bool operator<=(const Branch& o) const { return !(o < *this); }
  bool operator>=(const Branch& o) const { return !(*this < o); }
};

/// The sorted multiset B_G of all branches of a graph, stored as an ascending
/// vector. Precomputed once per graph and reused by every GBD evaluation, as
/// Section III prescribes for fair efficiency comparisons.
using BranchMultiset = std::vector<Branch>;

/// Extracts the sorted branch multiset of `g` in O(sum of degrees + n log n).
BranchMultiset ExtractBranches(const Graph& g);

/// |A ∩ B| for two sorted branch multisets (two-pointer merge,
/// O(|A| + |B|) branch comparisons).
size_t BranchIntersectionSize(const BranchMultiset& a, const BranchMultiset& b);

/// Graph Branch Distance (Definition 4):
///   GBD(G1,G2) = max(|V1|, |V2|) - |B_G1 ∩ B_G2|.
size_t Gbd(const Graph& g1, const Graph& g2);

/// GBD from precomputed multisets (|B_G| = |V| for ordinary graphs).
size_t GbdFromBranches(const BranchMultiset& b1, const BranchMultiset& b2);

/// Variant GBD of GBDA-V2 (Eq. 26):
///   VGBD(G1,G2) = max(|V1|,|V2|) - w * |B_G1 ∩ B_G2|, w user-defined.
double Vgbd(const BranchMultiset& b1, const BranchMultiset& b2, double w);

/// Branch-based lower bound on GED in the style of Zheng et al. [15]: the
/// optimal assignment between the two branch multisets (padded with empty
/// virtual branches) under the cost
///   cost(b1, b2) = [root1 != root2] + (max(|N1|,|N2|) - |N1 ∩ N2|) / 2,
/// solved exactly with the Hungarian algorithm. Each edge edit touches two
/// branches and each vertex edit one, so the assignment cost never exceeds
/// GED; the returned value is floor-compatible: LB <= GED(G1,G2).
double BranchGedLowerBound(const Graph& g1, const Graph& g2);

}  // namespace gbda
