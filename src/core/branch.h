#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/span.h"
#include "graph/graph.h"

namespace gbda {

/// A branch B(v) = {L(v), N(v)} (Definition 2): the label of vertex v plus
/// the sorted multiset of labels of its incident edges. Virtual (epsilon)
/// edges do not actually exist and are excluded from N(v); a virtual vertex
/// contributes a branch rooted at the virtual label.
struct Branch {
  LabelId root = kVirtualLabel;
  std::vector<LabelId> edge_labels;  // ascending

  /// Branch isomorphism (Definition 3) is exact equality of root label and
  /// edge-label multiset; the lexicographic order is the storage order of the
  /// branch multiset (the paper's std::lexicographical_compare ordering).
  bool operator==(const Branch& o) const {
    return root == o.root && edge_labels == o.edge_labels;
  }
  bool operator!=(const Branch& o) const { return !(*this == o); }
  bool operator<(const Branch& o) const {
    return std::tie(root, edge_labels) < std::tie(o.root, o.edge_labels);
  }
  bool operator>(const Branch& o) const { return o < *this; }
  bool operator<=(const Branch& o) const { return !(o < *this); }
  bool operator>=(const Branch& o) const { return !(*this < o); }
};

/// The sorted multiset B_G of all branches of a graph, stored as an ascending
/// vector. Precomputed once per graph and reused by every GBD evaluation, as
/// Section III prescribes for fair efficiency comparisons.
using BranchMultiset = std::vector<Branch>;

/// Non-owning view of one sorted branch multiset, the unit the scan contract
/// (core/index_reader.h) hands to GBD evaluation. Two backings share one
/// code path:
///   - owned: a BranchMultiset held by a decoded GbdaIndex;
///   - flat:  arena slices of a mapped v3 artifact (storage/index_view.h) —
///     parallel root / label-offset arrays plus a shared label pool, read in
///     place with zero deserialization.
/// Both present branch i as (root label, ascending edge-label span), and the
/// comparisons below are the exact (root, edge_labels) lexicographic order of
/// Branch::operator<, so GBD computed through a view is bit-identical to GBD
/// computed from the owning multisets. The viewed storage must outlive the
/// ref.
class BranchSetRef {
 public:
  /// Empty multiset (e.g. a tombstoned slot).
  BranchSetRef() = default;
  /// View over an owned multiset.
  explicit BranchSetRef(const BranchMultiset& owned)
      : owned_(&owned), size_(owned.size()) {}
  /// View over a flat arena: `label_offsets` holds size + 1 absolute offsets
  /// into `label_pool` (entry i / i+1 bound branch i's edge labels); offsets
  /// must be nondecreasing and in bounds (the artifact loader validates this
  /// once at open, so per-branch access is unchecked).
  BranchSetRef(const uint32_t* roots, const uint64_t* label_offsets,
               const LabelId* label_pool, size_t size)
      : roots_(roots),
        label_offsets_(label_offsets),
        label_pool_(label_pool),
        size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  LabelId root(size_t i) const {
    return owned_ ? (*owned_)[i].root : roots_[i];
  }
  Span<const LabelId> edge_labels(size_t i) const {
    if (owned_) {
      const std::vector<LabelId>& v = (*owned_)[i].edge_labels;
      return Span<const LabelId>(v.data(), v.size());
    }
    return Span<const LabelId>(
        label_pool_ + label_offsets_[i],
        static_cast<size_t>(label_offsets_[i + 1] - label_offsets_[i]));
  }

  /// Raw backing, for the specialized merge loops in branch.cc (the scan's
  /// innermost hot path dispatches once per multiset pair instead of per
  /// branch access). owned() is nullptr for flat and empty refs.
  const BranchMultiset* owned() const { return owned_; }
  const uint32_t* flat_roots() const { return roots_; }
  const uint64_t* flat_label_offsets() const { return label_offsets_; }
  const LabelId* flat_label_pool() const { return label_pool_; }

 private:
  const BranchMultiset* owned_ = nullptr;
  const uint32_t* roots_ = nullptr;
  const uint64_t* label_offsets_ = nullptr;
  const LabelId* label_pool_ = nullptr;
  size_t size_ = 0;
};

/// Extracts the sorted branch multiset of `g` in O(sum of degrees + n log n).
BranchMultiset ExtractBranches(const Graph& g);

/// |A ∩ B| for two sorted branch multisets (two-pointer merge,
/// O(|A| + |B|) branch comparisons).
size_t BranchIntersectionSize(const BranchMultiset& a, const BranchMultiset& b);

/// |A ∩ B| over views — the same merge and the same comparison order as the
/// owned overload, so mixed owned/flat pairs (a decoded query against a
/// mapped candidate) count intersections bit-identically.
size_t BranchIntersectionSize(const BranchSetRef& a, const BranchSetRef& b);

/// Graph Branch Distance (Definition 4):
///   GBD(G1,G2) = max(|V1|, |V2|) - |B_G1 ∩ B_G2|.
size_t Gbd(const Graph& g1, const Graph& g2);

/// GBD from precomputed multisets (|B_G| = |V| for ordinary graphs).
size_t GbdFromBranches(const BranchMultiset& b1, const BranchMultiset& b2);
size_t GbdFromBranches(const BranchSetRef& b1, const BranchSetRef& b2);

/// Variant GBD of GBDA-V2 (Eq. 26):
///   VGBD(G1,G2) = max(|V1|,|V2|) - w * |B_G1 ∩ B_G2|, w user-defined.
double Vgbd(const BranchMultiset& b1, const BranchMultiset& b2, double w);
double Vgbd(const BranchSetRef& b1, const BranchSetRef& b2, double w);

/// Branch-based lower bound on GED in the style of Zheng et al. [15]: the
/// optimal assignment between the two branch multisets (padded with empty
/// virtual branches) under the cost
///   cost(b1, b2) = [root1 != root2] + (max(|N1|,|N2|) - |N1 ∩ N2|) / 2,
/// solved exactly with the Hungarian algorithm. Each edge edit touches two
/// branches and each vertex edit one, so the assignment cost never exceeds
/// GED; the returned value is floor-compatible: LB <= GED(G1,G2).
double BranchGedLowerBound(const Graph& g1, const Graph& g2);

}  // namespace gbda
