/// \file gbda_index.h
/// The offline stage of GBDA (Step 1* of Algorithm 1), run once per
/// database and shared by any number of online searches. GbdaIndex stores
/// the three precomputed artifacts the online stage consumes: the sorted
/// branch multiset of every database graph (Section III), the GMM prior of
/// GBD values Lambda2 (Section V-B), and the Jeffreys prior of GED values
/// Lambda3 (Section V-C). It also records the offline time/space costs
/// reported in Tables IV-V and supports binary save/load.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/branch.h"
#include "core/gbd_prior.h"
#include "core/ged_prior.h"
#include "graph/graph_database.h"

namespace gbda {

/// Options for the offline stage (Step 1* of Algorithm 1).
struct GbdaIndexOptions {
  /// Largest similarity threshold the online stage will be asked for. The
  /// GED prior covers tau in [0, tau_max].
  int64_t tau_max = 10;
  GbdPriorOptions gbd_prior;
  /// Optional overrides for the label-universe sizes |L_V| / |L_E| used by
  /// the model (Eq. 33). 0 derives them from the database dictionaries.
  /// Useful when a database file only records the labels that occur but the
  /// universe is known to be larger.
  int64_t model_vertex_labels = 0;
  int64_t model_edge_labels = 0;
  /// When true the GED prior is precomputed for every v in [1, MaxVertices]
  /// as the paper describes; otherwise only sizes present in the database are
  /// warmed and unseen sizes are built lazily at query time.
  bool eager_all_sizes = false;
  uint64_t seed = 1234;
};

/// Wall-clock and memory cost of the offline stage, the measurements reported
/// in Tables IV and V.
struct OfflineCosts {
  double branch_seconds = 0.0;
  double gbd_prior_seconds = 0.0;
  double ged_prior_seconds = 0.0;
  size_t branch_bytes = 0;
  size_t gbd_prior_bytes = 0;
  size_t ged_prior_bytes = 0;
  size_t pairs_sampled = 0;
};

/// The offline artifact of GBDA: precomputed branch multisets for every
/// database graph (Section III requires them stored with the graphs), the
/// GMM prior of GBDs (Lambda2) and the Jeffreys prior of GEDs (Lambda3).
/// Built once per database, then shared by any number of online searches.
class GbdaIndex {
 public:
  /// Runs the offline stage over `db`. The database must stay alive and
  /// unmodified while the index is in use.
  static Result<GbdaIndex> Build(const GraphDatabase& db,
                                 const GbdaIndexOptions& options);

  const BranchMultiset& branches(size_t graph_id) const {
    return branches_[graph_id];
  }
  size_t num_graphs() const { return branches_.size(); }

  const GbdPrior& gbd_prior() const { return gbd_prior_; }
  GedPriorTable& ged_prior() { return *ged_prior_; }
  const GedPriorTable& ged_prior() const { return *ged_prior_; }

  int64_t tau_max() const { return options_.tau_max; }
  int64_t num_vertex_labels() const { return num_vertex_labels_; }
  int64_t num_edge_labels() const { return num_edge_labels_; }

  /// Mean vertex count over database graphs (used by the GBDA-V1 variant).
  double avg_vertices() const { return avg_vertices_; }

  const OfflineCosts& costs() const { return costs_; }
  const GbdaIndexOptions& options() const { return options_; }

  /// Binary persistence of the full offline artifact.
  Status SaveToFile(const std::string& path) const;
  static Result<GbdaIndex> LoadFromFile(const std::string& path);

 private:
  GbdaIndex() = default;

  GbdaIndexOptions options_;
  int64_t num_vertex_labels_ = 1;
  int64_t num_edge_labels_ = 1;
  double avg_vertices_ = 0.0;
  std::vector<BranchMultiset> branches_;
  GbdPrior gbd_prior_;
  std::unique_ptr<GedPriorTable> ged_prior_;
  OfflineCosts costs_;
};

}  // namespace gbda
