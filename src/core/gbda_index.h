/// \file gbda_index.h
/// The offline stage of GBDA (Step 1* of Algorithm 1), run once per
/// database and shared by any number of online searches. GbdaIndex stores
/// the three precomputed artifacts the online stage consumes: the sorted
/// branch multiset of every database graph (Section III), the GMM prior of
/// GBD values Lambda2 (Section V-B), and the Jeffreys prior of GED values
/// Lambda3 (Section V-C). It also records the offline time/space costs
/// reported in Tables IV-V and supports binary save/load.
///
/// Beyond the paper's frozen-database stage, the index supports incremental
/// maintenance for a corpus that changes under live traffic
/// (docs/ARCHITECTURE.md, "Dynamic corpus"): AddGraph / RemoveGraphs update
/// the per-graph branch multisets in O(1) per graph, the GED prior extends
/// lazily to unseen sizes as it always has, and the GMM prior Lambda2
/// tracks a staleness counter so a caller can re-fit it (RefitGbdPrior)
/// once drift exceeds its policy threshold. Artifacts are held through
/// shared_ptr, so CompactView can derive an immutable dense index over the
/// live graphs in O(live) pointer copies — the snapshot primitive of
/// DynamicGbdaService.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/branch.h"
#include "core/candidate_columns.h"
#include "core/gbd_prior.h"
#include "core/ged_prior.h"
#include "core/index_reader.h"
#include "graph/graph_database.h"

namespace gbda {

/// Options for the offline stage (Step 1* of Algorithm 1).
struct GbdaIndexOptions {
  /// Largest similarity threshold the online stage will be asked for. The
  /// GED prior covers tau in [0, tau_max].
  int64_t tau_max = 10;
  GbdPriorOptions gbd_prior;
  /// Optional overrides for the label-universe sizes |L_V| / |L_E| used by
  /// the model (Eq. 33). 0 derives them from the database dictionaries.
  /// Useful when a database file only records the labels that occur but the
  /// universe is known to be larger.
  int64_t model_vertex_labels = 0;
  int64_t model_edge_labels = 0;
  /// When true the GED prior is precomputed for every v in [1, MaxVertices]
  /// as the paper describes; otherwise only sizes present in the database are
  /// warmed and unseen sizes are built lazily at query time.
  bool eager_all_sizes = false;
  uint64_t seed = 1234;
};

/// Wall-clock and memory cost of the offline stage, the measurements reported
/// in Tables IV and V.
struct OfflineCosts {
  double branch_seconds = 0.0;
  double gbd_prior_seconds = 0.0;
  double ged_prior_seconds = 0.0;
  size_t branch_bytes = 0;
  size_t gbd_prior_bytes = 0;
  size_t ged_prior_bytes = 0;
  size_t pairs_sampled = 0;
};

/// The branch multiset of a tombstoned slot (see GbdaIndex::RemoveGraphs).
inline const BranchMultiset kEmptyBranchMultiset{};

/// First word of every v2 stream artifact ("GBDA" in little-endian bytes).
/// Exported so tooling (gbda_indexctl) routes artifacts by magic with the
/// loader's own constant rather than a copy that could drift.
inline constexpr uint32_t kIndexV2Magic = 0x47424441;
/// Byte size of the v2 integrity footer appended by SaveToFile (footer
/// magic + section count + one CRC32 per section). LoadFromFile accepts
/// payloads without it (pre-footer artifacts) but verifies it when present.
inline constexpr size_t kIndexV2FooterBytes = 6 * sizeof(uint32_t);

/// The offline artifact of GBDA: precomputed branch multisets for every
/// database graph (Section III requires them stored with the graphs), the
/// GMM prior of GBDs (Lambda2) and the Jeffreys prior of GEDs (Lambda3).
/// Built once per database, then shared by any number of online searches.
///
/// Copying an index is cheap and shallow: the branch multisets and both
/// priors are immutable (or internally synchronized) shared artifacts.
///
/// GbdaIndex is the owning implementation of the IndexReader scan contract;
/// the zero-copy GbdaIndexView (storage/index_view.h) is the other.
class GbdaIndex : public IndexReader {
 public:
  /// Runs the offline stage over `db`. The database must not contain
  /// tombstones (use the dynamic serving layer for mutable corpora) and must
  /// stay alive while the index is in use.
  static Result<GbdaIndex> Build(const GraphDatabase& db,
                                 const GbdaIndexOptions& options);

  /// Assembles an index from already-decoded artifact parts — the storage
  /// engine's v3 -> v2 materialization path (storage/index_view.h). Performs
  /// the same cross-checks LoadFromFile runs on a v2 stream: plausible
  /// header fields and a GED-prior header that agrees with the index header.
  /// The assembled index reports gbd_staleness() == 0, like any loaded
  /// artifact.
  static Result<GbdaIndex> FromParts(const GbdaIndexOptions& options,
                                     int64_t num_vertex_labels,
                                     int64_t num_edge_labels,
                                     std::vector<BranchMultiset> branches,
                                     GbdPrior gbd_prior,
                                     GedPriorTable ged_prior);

  const BranchMultiset& branches(size_t graph_id) const {
    return branches_[graph_id] ? *branches_[graph_id] : kEmptyBranchMultiset;
  }
  size_t num_graphs() const override { return branches_.size(); }

  BranchSetRef branch_set(size_t graph_id) const override {
    return branches_[graph_id] ? BranchSetRef(*branches_[graph_id])
                               : BranchSetRef();
  }

  /// The SoA candidate columns, materialised lazily from the branch
  /// multisets on first use (BuildCandidateColumns) and cached. Safe for
  /// concurrent readers; AddGraph / RemoveGraphs swap in a fresh cache, so
  /// shallow copies taken earlier (CompactView snapshots, shard replicas)
  /// keep reading the cache that matches THEIR branch data.
  CandidateColumns columns() const override;

  const GbdPrior& gbd_prior() const override { return *gbd_prior_; }
  GedPriorTable& ged_prior() { return *ged_prior_; }
  const GedPriorTable& ged_prior() const { return *ged_prior_; }
  GedPriorTable* mutable_ged_prior() const override {
    return ged_prior_.get();
  }

  int64_t tau_max() const override { return options_.tau_max; }
  int64_t num_vertex_labels() const override { return num_vertex_labels_; }
  int64_t num_edge_labels() const override { return num_edge_labels_; }

  /// Mean vertex count over live database graphs (used by the GBDA-V1
  /// variant).
  double avg_vertices() const override {
    return num_live_ == 0 ? 0.0
                          : vertex_sum_ / static_cast<double>(num_live_);
  }

  const OfflineCosts& costs() const { return costs_; }
  const GbdaIndexOptions& options() const override { return options_; }

  // -- Incremental maintenance (docs/ARCHITECTURE.md, "Dynamic corpus") ----

  /// Appends the branch multiset of `g` (its id becomes num_graphs() - 1).
  /// O(|g| log |g|) — only the new graph is touched. Lambda2 is NOT refit;
  /// the staleness counter advances instead.
  size_t AddGraph(const Graph& g);

  /// Tombstones the given slots: their multisets are dropped and they no
  /// longer contribute to avg_vertices or Lambda2 refits. Fails without
  /// modifying anything when an id is out of range or already removed.
  Status RemoveGraphs(const std::vector<size_t>& ids);

  /// True when `id` holds a live (non-tombstoned) branch multiset.
  bool is_live(size_t id) const {
    return id < branches_.size() && branches_[id] != nullptr;
  }
  size_t num_live() const override { return num_live_; }

  /// Mutations (adds + removes) since Lambda2 was last fit.
  size_t gbd_staleness() const override { return gbd_staleness_; }
  /// Staleness relative to the live corpus size — the drift measure of the
  /// refit policy (DynamicServiceOptions::gbd_refit_fraction).
  double GbdStalenessFraction() const {
    return num_live_ == 0 ? 0.0
                          : static_cast<double>(gbd_staleness_) /
                                static_cast<double>(num_live_);
  }

  /// Re-fits Lambda2 over the live branch multisets with this index's seed
  /// and sampling options — the exact arithmetic Build would run over a
  /// fresh database holding the live graphs in id order, so a refit index
  /// is bit-identical to a from-scratch rebuild. Needs >= 2 live graphs.
  Status RefitGbdPrior();

  /// Updates the model label-universe sizes |L_V| / |L_E| (Eq. 33), e.g.
  /// after new graphs introduced unseen labels. On change the GED prior
  /// table is replaced (rows rebuild lazily under the new universe).
  void RefreshModelLabels(int64_t num_vertex_labels, int64_t num_edge_labels);

  /// Derives the dense immutable index over the live slots, sharing every
  /// artifact (branch multisets, both priors) with this index — O(live)
  /// shared_ptr copies. `live_ids_out`, when non-null, receives the
  /// dense-position -> stable-id mapping. The view equals what Build would
  /// produce over a database holding exactly the live graphs in id order,
  /// assuming Lambda2 is fresh (gbd_staleness() == 0).
  GbdaIndex CompactView(std::vector<size_t>* live_ids_out) const;

  /// Binary persistence of the full offline artifact. Tombstoned or
  /// Lambda2-stale indexes cannot be saved (the format carries neither
  /// liveness nor staleness): refit first, or persist a fresh rebuild.
  Status SaveToFile(const std::string& path) const;
  static Result<GbdaIndex> LoadFromFile(const std::string& path);

 private:
  GbdaIndex() = default;

  /// Lazily built candidate columns. Held through shared_ptr and REPLACED
  /// (never mutated in place) on branch mutations, preserving the class's
  /// cheap-shallow-copy contract: a copy sharing the old cache object stays
  /// internally consistent because its branches_ snapshot is the one the
  /// cached columns were (or will be) built from.
  struct ColumnCache {
    Mutex mu;
    bool built GBDA_GUARDED_BY(mu) = false;
    /// Guarded only during the build: columns() hands out views after
    /// setting `built` under `mu`, and from then on the object is immutable
    /// (mutations swap in a whole new ColumnCache instead).
    OwnedCandidateColumns columns GBDA_GUARDED_BY(mu);
  };

  GbdaIndexOptions options_;
  int64_t num_vertex_labels_ = 1;
  int64_t num_edge_labels_ = 1;
  /// Exact sum of vertex counts over live graphs (integer-valued doubles, so
  /// incremental +/- stays bit-identical to a fresh summation).
  double vertex_sum_ = 0.0;
  size_t num_live_ = 0;
  size_t gbd_staleness_ = 0;
  /// nullptr marks a tombstoned slot.
  std::vector<std::shared_ptr<const BranchMultiset>> branches_;
  std::shared_ptr<const GbdPrior> gbd_prior_;
  std::shared_ptr<GedPriorTable> ged_prior_;
  std::shared_ptr<ColumnCache> column_cache_ = std::make_shared<ColumnCache>();
  OfflineCosts costs_;
};

/// The construction-time agreement check of every (database, index) consumer
/// (GbdaSearch, GbdaService, DynamicGbdaService): an index built over a
/// different database generation — e.g. a stale SaveToFile artifact — would
/// otherwise drive out-of-bounds branch and prefilter lookups during scans.
/// Accepts any IndexReader, so a mapped v3 artifact is checked the same way
/// as a decoded index.
Status ValidateIndexForDatabase(const GraphDatabase& db,
                                const IndexReader& index);

/// Shared plausibility validation of persisted index header fields, used by
/// both the v2 stream loader (LoadFromFile) and the v3 arena loader
/// (storage/index_view.cc). A hostile artifact can claim any value; these
/// bounds only need to admit every index this library can build.
Status ValidatePersistedIndexHeader(const GbdaIndexOptions& options,
                                    int64_t num_vertex_labels,
                                    int64_t num_edge_labels,
                                    double avg_vertices);

}  // namespace gbda
