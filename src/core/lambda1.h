#pragma once

#include <cstdint>
#include <vector>

#include "core/omega.h"

namespace gbda {

/// Computes Lambda1(tau, phi) = Pr[GBD = phi | GED = tau] (Eq. 8 / 27) for a
/// fixed extended-graph size v and label alphabet.
///
/// The decomposition follows Section VI-B: the Omega2 coverage table and the
/// inner sum
///     inner2(x, m, phi) = sum_r Omega3(r, phi) * Omega4(x, r, m)
/// do not depend on tau, so one pass produces Lambda1 for *every* tau in
/// [0, tau_max] at a given phi in O(tau_max^3) — the complexity claimed by
/// Theorem 3 for the online stage.
class Lambda1Calculator {
 public:
  /// Shared tables cost O(tau_max^2) time and memory.
  Lambda1Calculator(const ModelParams& params, int64_t tau_max);

  /// Lambda1(tau, phi) for all tau in [0, tau_max]; O(tau_max^3).
  std::vector<double> Column(int64_t phi) const;

  /// Full matrix[tau][phi], phi in [0, 2*tau_max]; O(tau_max^4). Used by the
  /// offline Jeffreys-prior construction (Section V-C).
  std::vector<std::vector<double>> Matrix() const;

  const ModelParams& params() const { return params_; }
  int64_t tau_max() const { return tau_max_; }

 private:
  /// inner2 for one phi, indexed [x][m].
  std::vector<std::vector<double>> Inner2(int64_t phi) const;

  ModelParams params_;
  int64_t tau_max_;
  int64_t m_cap_;  // min(2*tau_max, v): max vertices coverable by edges
  Omega2Table omega2_;
  std::vector<std::vector<double>> omega1_;  // [tau][x]
};

}  // namespace gbda
