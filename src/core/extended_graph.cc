#include "core/extended_graph.h"

#include <algorithm>
#include <numeric>

namespace gbda {

Graph ExtendGraph(const Graph& g, size_t k) {
  Graph ext = g;
  for (size_t i = 0; i < k; ++i) ext.AddVertex(kVirtualLabel);
  const uint32_t n = static_cast<uint32_t>(ext.num_vertices());
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (!ext.HasEdge(u, v)) {
        // Cannot fail: endpoints valid, u != v, edge absent.
        (void)ext.AddEdge(u, v, kVirtualLabel);
      }
    }
  }
  return ext;
}

Result<size_t> RelabelOnlyGedExtended(const Graph& ext1, const Graph& ext2) {
  const size_t n = ext1.num_vertices();
  if (n != ext2.num_vertices()) {
    return Status::InvalidArgument("extended graphs must have equal size");
  }
  if (n > 10) {
    return Status::ResourceExhausted(
        "exhaustive relabel-GED is limited to 10 vertices");
  }
  if (n == 0) return size_t{0};

  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  size_t best = SIZE_MAX;
  do {
    size_t mismatches = 0;
    for (uint32_t u = 0; u < n && mismatches < best; ++u) {
      if (ext1.VertexLabel(u) != ext2.VertexLabel(perm[u])) ++mismatches;
    }
    for (uint32_t u = 0; u < n && mismatches < best; ++u) {
      for (uint32_t v = u + 1; v < n; ++v) {
        // Both graphs are complete, so both labels exist.
        const LabelId l1 = ext1.EdgeLabel(u, v).value();
        const LabelId l2 = ext2.EdgeLabel(perm[u], perm[v]).value();
        if (l1 != l2) ++mismatches;
      }
    }
    best = std::min(best, mismatches);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace gbda
