#include "core/gbda_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/timer.h"

namespace gbda {

bool SearchMatchRankBefore(const SearchMatch& a, const SearchMatch& b) {
  if (a.phi_score != b.phi_score) return a.phi_score > b.phi_score;
  if (a.gbd != b.gbd) return a.gbd < b.gbd;
  return a.graph_id < b.graph_id;
}

void SortTopK(std::vector<SearchMatch>* matches, size_t k) {
  if (k >= matches->size()) {
    std::sort(matches->begin(), matches->end(), SearchMatchRankBefore);
    return;
  }
  std::partial_sort(matches->begin(),
                    matches->begin() + static_cast<ptrdiff_t>(k),
                    matches->end(), SearchMatchRankBefore);
  matches->resize(k);
}

Result<ScanContext> PrepareScan(const Graph& query,
                                const SearchOptions& options, bool apply_gamma,
                                const CorpusRef& corpus,
                                const IndexReader& index) {
  if (options.tau_hat < 0 || options.tau_hat > index.tau_max()) {
    return Status::InvalidArgument(
        "tau_hat outside the range supported by this index");
  }
  if (corpus.size() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index/database mismatch: index covers " +
        std::to_string(index.num_graphs()) + " graphs, corpus holds " +
        std::to_string(corpus.size()) + " (stale index artifact?)");
  }
  // A tombstoned index would have its retired slots scanned as empty
  // multisets here (dynamic snapshots are dense CompactViews, so they pass).
  if (index.num_live() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  ScanContext ctx;
  ctx.options = options;
  ctx.apply_gamma = apply_gamma;
  ctx.query_branches = ExtractBranches(query);
  // Flatten the query multiset once per query (see ScanContext::query_ref):
  // same (root, labels) content, so the intersection count — and every
  // score derived from it — is unchanged.
  const size_t query_size = ctx.query_branches.size();
  ctx.query_roots.resize(query_size);
  ctx.query_offsets.assign(query_size + 1, 0);
  for (size_t i = 0; i < query_size; ++i) {
    const Branch& b = ctx.query_branches[i];
    ctx.query_roots[i] = b.root;
    ctx.query_pool.insert(ctx.query_pool.end(), b.edge_labels.begin(),
                          b.edge_labels.end());
    ctx.query_offsets[i + 1] = ctx.query_pool.size();
  }
  ctx.query_ref = BranchSetRef(ctx.query_roots.data(),
                               ctx.query_offsets.data(),
                               ctx.query_pool.data(), query_size);
  if (options.use_prefilter) ctx.query_profile = BuildFilterProfile(query);

  // GBDA-V1 replaces the pair-specific |V'1| by a database average estimated
  // from alpha sampled graphs. Sampled once per query so every shard of the
  // same query sees the same estimate.
  if (options.variant == GbdaVariant::kAverageSize) {
    Rng rng(options.seed);
    const size_t alpha =
        std::max<size_t>(1, std::min(options.v1_sample_alpha, corpus.size()));
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(corpus.size(), alpha);
    double sum = 0.0;
    for (size_t id : picks) {
      sum += static_cast<double>(corpus.graph(id).num_vertices());
    }
    ctx.v1_size = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(sum / static_cast<double>(alpha))));
  }
  return ctx;
}

Status ScanRange(const ScanContext& ctx, const IndexReader& index,
                 const Prefilter* prefilter, size_t begin, size_t end,
                 PosteriorEngine* posterior, SearchResult* result) {
  const SearchOptions& options = ctx.options;
  const BranchSetRef& query_branches = ctx.query_ref;
  const size_t range = end - begin;
  // Only the no-gamma, no-prefilter scan has a known match count (every
  // candidate); under the gamma cut or the prefilter the accepted set is
  // small in real workloads, so a modest reservation avoids the early
  // doubling churn without over-allocating per shard.
  const size_t expected =
      !ctx.apply_gamma && !options.use_prefilter
          ? range
          : std::min<size_t>(range, 64);
  result->matches.reserve(result->matches.size() + expected);
  // Scan-local Phi cache. tau_hat is fixed for the whole scan, so (v, phi)
  // keys the posterior value; a database scan repeats the same few hundred
  // pairs thousands of times, and answering repeats here — without the
  // engine's mutex + global-map round trip — is what keeps the per-candidate
  // cost near the branch intersection itself. Pure memoisation of a
  // deterministic function: results stay bit-identical, per shard and
  // serially (the engine's own cross-query memo is unchanged).
  std::unordered_map<uint64_t, double> local_phi;
  for (size_t id = begin; id < end; ++id) {
    if (options.use_prefilter &&
        !prefilter->Passes(ctx.query_profile, id, options.tau_hat)) {
      ++result->prefiltered_out;
      continue;
    }
    const BranchSetRef g_branches = index.branch_set(id);
    ++result->candidates_evaluated;

    int64_t phi;
    if (options.variant == GbdaVariant::kWeightedGbd) {
      const double vgbd = Vgbd(query_branches, g_branches, options.vgbd_w);
      phi = std::max<int64_t>(0, static_cast<int64_t>(std::llround(vgbd)));
    } else {
      phi = static_cast<int64_t>(GbdFromBranches(query_branches, g_branches));
    }

    const int64_t v =
        options.variant == GbdaVariant::kAverageSize
            ? ctx.v1_size
            : static_cast<int64_t>(
                  std::max(query_branches.size(), g_branches.size()));

    // v is bounded by vertex counts (LabelId-sized) so it always fits its
    // key half; phi normally is too, but the kWeightedGbd variant rounds
    // max_size - w * common with a caller-supplied w, which an extreme
    // weight can push past 32 bits — such pairs bypass the cache rather
    // than collide in it.
    double score;
    const bool cacheable = phi <= INT64_C(0xFFFFFFFF);
    const uint64_t key =
        (static_cast<uint64_t>(v) << 32) | static_cast<uint64_t>(phi);
    const auto cached =
        cacheable ? local_phi.find(key) : local_phi.end();
    if (cacheable && cached != local_phi.end()) {
      score = cached->second;
    } else {
      Result<double> phi_score = posterior->Phi(v, phi, options.tau_hat);
      if (!phi_score.ok()) return phi_score.status();
      score = *phi_score;
      if (cacheable) local_phi.emplace(key, score);
    }
    if (!ctx.apply_gamma || score >= options.gamma) {
      result->matches.push_back(SearchMatch{id, score, phi});
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<GbdaSearch>> GbdaSearch::Create(
    const GraphDatabase* db, const IndexReader* index) {
  Status agree = ValidateIndexForDatabase(*db, *index);
  if (!agree.ok()) return agree;
  return std::make_unique<GbdaSearch>(db, index);
}

GbdaSearch::GbdaSearch(const GraphDatabase* db, const IndexReader* index)
    : db_(db),
      index_(index),
      posterior_(index->num_vertex_labels(), index->num_edge_labels(),
                 index->tau_max(), index->mutable_ged_prior(),
                 &index->gbd_prior()) {}

Result<SearchResult> GbdaSearch::Scan(const Graph& query,
                                      const SearchOptions& options,
                                      bool apply_gamma) {
  WallTimer timer;
  // Retired db slots would otherwise still be scanned (their index entries
  // are intact); PrepareScan catches the tombstoned-index direction.
  if (db_->has_tombstones()) {
    return Status::FailedPrecondition(
        "database is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  Result<ScanContext> ctx =
      PrepareScan(query, options, apply_gamma, CorpusRef(db_), *index_);
  if (!ctx.ok()) return ctx.status();
  // Touch prefilter_ only on the use_prefilter branch: a non-prefiltered
  // query reading the pointer while another thread's call_once is
  // constructing it would be an unsynchronized read.
  const Prefilter* prefilter = nullptr;
  if (options.use_prefilter) {
    std::call_once(prefilter_once_,
                   [this] { prefilter_ = std::make_unique<Prefilter>(db_); });
    prefilter = prefilter_.get();
  }
  SearchResult result;
  Status scan = ScanRange(*ctx, *index_, prefilter, 0, db_->size(),
                          &posterior_, &result);
  if (!scan.ok()) return scan;
  result.seconds = timer.Seconds();
  return result;
}

Result<SearchResult> GbdaSearch::Query(const Graph& query,
                                       const SearchOptions& options) {
  return Scan(query, options, /*apply_gamma=*/true);
}

Result<SearchResult> GbdaSearch::QueryTopK(const Graph& query, size_t k,
                                           const SearchOptions& options) {
  Result<SearchResult> scan = Scan(query, options, /*apply_gamma=*/false);
  if (!scan.ok()) return scan.status();
  SearchResult result = std::move(*scan);
  SortTopK(&result.matches, k);
  return result;
}

}  // namespace gbda
