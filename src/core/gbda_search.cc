#include "core/gbda_search.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace gbda {

bool SearchMatchRankBefore(const SearchMatch& a, const SearchMatch& b) {
  if (a.phi_score != b.phi_score) return a.phi_score > b.phi_score;
  if (a.gbd != b.gbd) return a.gbd < b.gbd;
  return a.graph_id < b.graph_id;
}

void SortTopK(std::vector<SearchMatch>* matches, size_t k) {
  if (k >= matches->size()) {
    std::sort(matches->begin(), matches->end(), SearchMatchRankBefore);
    return;
  }
  std::partial_sort(matches->begin(),
                    matches->begin() + static_cast<ptrdiff_t>(k),
                    matches->end(), SearchMatchRankBefore);
  matches->resize(k);
}

Result<ScanContext> PrepareScan(const Graph& query,
                                const SearchOptions& options, bool apply_gamma,
                                const CorpusRef& corpus,
                                const GbdaIndex& index) {
  if (options.tau_hat < 0 || options.tau_hat > index.tau_max()) {
    return Status::InvalidArgument(
        "tau_hat outside the range supported by this index");
  }
  if (corpus.size() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index/database mismatch: index covers " +
        std::to_string(index.num_graphs()) + " graphs, corpus holds " +
        std::to_string(corpus.size()) + " (stale index artifact?)");
  }
  // A tombstoned index would have its retired slots scanned as empty
  // multisets here (dynamic snapshots are dense CompactViews, so they pass).
  if (index.num_live() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  ScanContext ctx;
  ctx.options = options;
  ctx.apply_gamma = apply_gamma;
  ctx.query_branches = ExtractBranches(query);
  if (options.use_prefilter) ctx.query_profile = BuildFilterProfile(query);

  // GBDA-V1 replaces the pair-specific |V'1| by a database average estimated
  // from alpha sampled graphs. Sampled once per query so every shard of the
  // same query sees the same estimate.
  if (options.variant == GbdaVariant::kAverageSize) {
    Rng rng(options.seed);
    const size_t alpha =
        std::max<size_t>(1, std::min(options.v1_sample_alpha, corpus.size()));
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(corpus.size(), alpha);
    double sum = 0.0;
    for (size_t id : picks) {
      sum += static_cast<double>(corpus.graph(id).num_vertices());
    }
    ctx.v1_size = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(sum / static_cast<double>(alpha))));
  }
  return ctx;
}

Status ScanRange(const ScanContext& ctx, const GbdaIndex& index,
                 const Prefilter* prefilter, size_t begin, size_t end,
                 PosteriorEngine* posterior, SearchResult* result) {
  const SearchOptions& options = ctx.options;
  const size_t range = end - begin;
  // Only the no-gamma, no-prefilter scan has a known match count (every
  // candidate); under the gamma cut or the prefilter the accepted set is
  // small in real workloads, so a modest reservation avoids the early
  // doubling churn without over-allocating per shard.
  const size_t expected =
      !ctx.apply_gamma && !options.use_prefilter
          ? range
          : std::min<size_t>(range, 64);
  result->matches.reserve(result->matches.size() + expected);
  for (size_t id = begin; id < end; ++id) {
    if (options.use_prefilter &&
        !prefilter->Passes(ctx.query_profile, id, options.tau_hat)) {
      ++result->prefiltered_out;
      continue;
    }
    const BranchMultiset& g_branches = index.branches(id);
    ++result->candidates_evaluated;

    int64_t phi;
    if (options.variant == GbdaVariant::kWeightedGbd) {
      const double vgbd = Vgbd(ctx.query_branches, g_branches, options.vgbd_w);
      phi = std::max<int64_t>(0, static_cast<int64_t>(std::llround(vgbd)));
    } else {
      phi = static_cast<int64_t>(
          GbdFromBranches(ctx.query_branches, g_branches));
    }

    const int64_t v =
        options.variant == GbdaVariant::kAverageSize
            ? ctx.v1_size
            : static_cast<int64_t>(
                  std::max(ctx.query_branches.size(), g_branches.size()));

    Result<double> phi_score = posterior->Phi(v, phi, options.tau_hat);
    if (!phi_score.ok()) return phi_score.status();
    if (!ctx.apply_gamma || *phi_score >= options.gamma) {
      result->matches.push_back(SearchMatch{id, *phi_score, phi});
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<GbdaSearch>> GbdaSearch::Create(const GraphDatabase* db,
                                                       GbdaIndex* index) {
  Status agree = ValidateIndexForDatabase(*db, *index);
  if (!agree.ok()) return agree;
  return std::make_unique<GbdaSearch>(db, index);
}

GbdaSearch::GbdaSearch(const GraphDatabase* db, GbdaIndex* index)
    : db_(db),
      index_(index),
      posterior_(index->num_vertex_labels(), index->num_edge_labels(),
                 index->tau_max(), &index->ged_prior(), &index->gbd_prior()),
      prefilter_(db) {}

Result<SearchResult> GbdaSearch::Scan(const Graph& query,
                                      const SearchOptions& options,
                                      bool apply_gamma) {
  WallTimer timer;
  // Retired db slots would otherwise still be scanned (their index entries
  // are intact); PrepareScan catches the tombstoned-index direction.
  if (db_->has_tombstones()) {
    return Status::FailedPrecondition(
        "database is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  Result<ScanContext> ctx =
      PrepareScan(query, options, apply_gamma, CorpusRef(db_), *index_);
  if (!ctx.ok()) return ctx.status();
  SearchResult result;
  Status scan = ScanRange(*ctx, *index_, &prefilter_, 0, db_->size(),
                          &posterior_, &result);
  if (!scan.ok()) return scan;
  result.seconds = timer.Seconds();
  return result;
}

Result<SearchResult> GbdaSearch::Query(const Graph& query,
                                       const SearchOptions& options) {
  return Scan(query, options, /*apply_gamma=*/true);
}

Result<SearchResult> GbdaSearch::QueryTopK(const Graph& query, size_t k,
                                           const SearchOptions& options) {
  Result<SearchResult> scan = Scan(query, options, /*apply_gamma=*/false);
  if (!scan.ok()) return scan.status();
  SearchResult result = std::move(*scan);
  SortTopK(&result.matches, k);
  return result;
}

}  // namespace gbda
