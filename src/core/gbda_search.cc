#include "core/gbda_search.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "core/candidate_columns.h"

namespace gbda {

bool SearchMatchRankBefore(const SearchMatch& a, const SearchMatch& b) {
  if (a.phi_score != b.phi_score) return a.phi_score > b.phi_score;
  if (a.gbd != b.gbd) return a.gbd < b.gbd;
  return a.graph_id < b.graph_id;
}

void SortTopK(std::vector<SearchMatch>* matches, size_t k) {
  if (k >= matches->size()) {
    std::sort(matches->begin(), matches->end(), SearchMatchRankBefore);
    return;
  }
  std::partial_sort(matches->begin(),
                    matches->begin() + static_cast<ptrdiff_t>(k),
                    matches->end(), SearchMatchRankBefore);
  matches->resize(k);
}

Result<ScanContext> PrepareScan(const Graph& query,
                                const SearchOptions& options, bool apply_gamma,
                                const CorpusRef& corpus,
                                const IndexReader& index) {
  if (options.tau_hat < 0 || options.tau_hat > index.tau_max()) {
    return Status::InvalidArgument(
        "tau_hat outside the range supported by this index");
  }
  if (corpus.size() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index/database mismatch: index covers " +
        std::to_string(index.num_graphs()) + " graphs, corpus holds " +
        std::to_string(corpus.size()) + " (stale index artifact?)");
  }
  // A tombstoned index would have its retired slots scanned as empty
  // multisets here (dynamic snapshots are dense CompactViews, so they pass).
  if (index.num_live() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  ScanContext ctx;
  ctx.options = options;
  ctx.apply_gamma = apply_gamma;
  ctx.query_branches = ExtractBranches(query);
  // Flatten the query multiset once per query (see ScanContext::query_ref):
  // same (root, labels) content, so the intersection count — and every
  // score derived from it — is unchanged.
  const size_t query_size = ctx.query_branches.size();
  ctx.query_roots.resize(query_size);
  ctx.query_offsets.assign(query_size + 1, 0);
  for (size_t i = 0; i < query_size; ++i) {
    const Branch& b = ctx.query_branches[i];
    ctx.query_roots[i] = b.root;
    ctx.query_pool.insert(ctx.query_pool.end(), b.edge_labels.begin(),
                          b.edge_labels.end());
    ctx.query_offsets[i + 1] = ctx.query_pool.size();
  }
  ctx.query_ref = BranchSetRef(ctx.query_roots.data(),
                               ctx.query_offsets.data(),
                               ctx.query_pool.data(), query_size);
  // The query's sorted branch fingerprints: the query side of every kernel
  // call the scan makes. Kept as (fp, branch) pairs through the sort so the
  // audit below can map a colliding key back to its branch content.
  std::vector<std::pair<uint64_t, uint32_t>> fp_idx(query_size);
  for (size_t i = 0; i < query_size; ++i) {
    const Span<const LabelId> labels = ctx.query_ref.edge_labels(i);
    fp_idx[i] = {BranchFingerprint(ctx.query_roots[i], labels.data(),
                                   labels.size()),
                 static_cast<uint32_t>(i)};
  }
  std::sort(fp_idx.begin(), fp_idx.end());
  ctx.query_fps.resize(query_size);
  for (size_t i = 0; i < query_size; ++i) {
    ctx.query_fps[i] = fp_idx[i].first;
  }
  // Query-side exactness audit (see ScanContext::fp_exact): with the corpus
  // side already certified injective by the index's directory, fingerprint
  // scoring is exact iff the query introduces no collision either — among
  // its own branches, or against the directory representative of any
  // fingerprint it shares with the corpus. Any failure just falls back to
  // the exact branch merges; results are bit-identical either way.
  const CandidateColumns columns = index.columns();
  if (columns.exactness_certified() &&
      options.variant != GbdaVariant::kWeightedGbd) {
    ctx.fp_exact = true;
    for (size_t i = 0; i < query_size && ctx.fp_exact; ++i) {
      if (i > 0 && fp_idx[i].first == fp_idx[i - 1].first) {
        // Duplicate key within the query: exact only if the contents agree
        // (a true duplicate branch). Checking adjacent pairs covers the
        // whole run, and the first pair already vetted this key against the
        // directory.
        ctx.fp_exact = SameBranchContent(ctx.query_ref, fp_idx[i].second,
                                         ctx.query_ref, fp_idx[i - 1].second);
        continue;
      }
      const uint64_t* end = columns.fp_unique + columns.num_distinct;
      const uint64_t* it =
          std::lower_bound(columns.fp_unique, end, fp_idx[i].first);
      if (it != end && *it == fp_idx[i].first) {
        // The corpus holds this key too; injectivity corpus-wide means ONE
        // content compare against the representative settles every corpus
        // branch with it.
        const uint64_t rep = columns.fp_rep[it - columns.fp_unique];
        ctx.fp_exact = SameBranchContent(
            ctx.query_ref, fp_idx[i].second,
            index.branch_set(static_cast<size_t>(rep >> 32)),
            static_cast<size_t>(rep & 0xFFFFFFFFull));
      }
    }
  }
  // Ranking scans that may arm early termination build the profile even
  // without the prefilter: the pruning bound sharpens its GBD lower bound
  // through it whenever candidate profiles are available (see ScanRange).
  // Approximate ranking scans always need it — the proximity-graph
  // navigation keys off the profile's sorted branch fingerprints. A
  // disarmed exhaustive ranking scan (topk_early_termination off, or no
  // bounds passed) never reads it, so it skips the build.
  if (options.use_prefilter ||
      (!apply_gamma &&
       (options.topk_early_termination || options.approximate))) {
    // Reuses the branches extracted above instead of a second pass.
    ctx.query_profile = BuildFilterProfile(query, ctx.query_branches);
  }

  // GBDA-V1 replaces the pair-specific |V'1| by a database average estimated
  // from alpha sampled graphs. Sampled once per query so every shard of the
  // same query sees the same estimate.
  if (options.variant == GbdaVariant::kAverageSize) {
    Rng rng(options.seed);
    const size_t alpha =
        std::max<size_t>(1, std::min(options.v1_sample_alpha, corpus.size()));
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(corpus.size(), alpha);
    double sum = 0.0;
    for (size_t id : picks) {
      sum += static_cast<double>(corpus.graph(id).num_vertices());
    }
    ctx.v1_size = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(sum / static_cast<double>(alpha))));
  }
  return ctx;
}

namespace {

/// The two id sequences the shared evaluation loop runs over: a contiguous
/// [begin, begin + count) range (ScanRange) and an explicit candidate list
/// (ScanCandidateList, the verification half of approximate mode). Both are
/// trivial index adapters so the loop below compiles to the same code the
/// plain range scan had.
struct ContiguousIds {
  size_t begin;
  size_t count;
  size_t size() const { return count; }
  size_t operator[](size_t i) const { return begin + i; }
};

struct ListedIds {
  const uint32_t* ids;
  size_t count;
  size_t size() const { return count; }
  size_t operator[](size_t i) const { return ids[i]; }
};

/// One evaluation loop for both entry points: candidate admission, the
/// two-tier early-termination bound, the branch-merge + posterior scoring
/// and the witness bookkeeping are shared verbatim, so a match appended for
/// id X is bit-identical whichever sequence listed X — the property
/// approximate mode's "subset with exact scores" contract rests on.
template <typename IdSeq>
Status ScanIdSequence(const ScanContext& ctx, const IndexReader& index,
                      const Prefilter* prefilter, const IdSeq& id_seq,
                      PosteriorEngine* posterior, SearchResult* result,
                      ScanBounds* bounds) {
  const SearchOptions& options = ctx.options;
  const BranchSetRef& query_branches = ctx.query_ref;
  const size_t range = id_seq.size();
  // Resolved once per scan call: the GBDA_FORCE_SCALAR_KERNELS environment
  // override, then the per-scan knob, then cpuid (common/kernels.h). Both
  // tables compute identical values, so everything downstream is
  // bit-identical whichever is picked.
  const ScanKernels& kernels =
      GetScanKernels(ResolveKernels(options.kernel_dispatch));
  const CandidateColumns columns = index.columns();
  // Armed by PrepareScan's query-side audit; the column re-check guards a
  // context paired with a different backing than it was prepared against
  // (it can only disable, never wrongly enable).
  const bool fp_exact = ctx.fp_exact && columns.exactness_certified();
  // Early termination applies only to ranking scans (every candidate is a
  // match, so the k-th best match is a pruning witness); a threshold scan
  // must score every surviving candidate. The ctx flag is part of the
  // guard: a context prepared with topk_early_termination off skipped the
  // query-profile build, and arming tier 2 against that empty profile
  // would prune unsoundly.
  const bool prune = bounds != nullptr && !ctx.apply_gamma &&
                     bounds->k() > 0 && ctx.options.topk_early_termination;
  // The k best (phi_score, gbd) pairs appended by THIS call under the
  // SearchMatchRankBefore order (ids never matter: pruning tests are
  // strictly-worse only), root = local k-th best. Keeping gbd alongside phi
  // lets the bound prune through the tie-break too — essential when the
  // k-th best phi_score is exactly 0 (more ranks requested than candidates
  // with posterior mass), where a phi-only threshold could never prune.
  // Only full heaps yield witnesses, so a shard with fewer than k
  // candidates simply never prunes locally.
  struct Witness {
    double phi;
    int64_t gbd;
  };
  // "Ranks before" on (phi desc, gbd asc); priority_queue's root is then
  // the worst retained witness, i.e. the local k-th best.
  const auto witness_rank_before = [](const Witness& a, const Witness& b) {
    if (a.phi != b.phi) return a.phi > b.phi;
    return a.gbd < b.gbd;
  };
  std::priority_queue<Witness, std::vector<Witness>,
                      decltype(witness_rank_before)>
      local_topk(witness_rank_before);
  // Scan-local copies of the per-size Phi suffix-max tables, so the
  // per-candidate bound check never takes an engine mutex round trip (same
  // reasoning as local_phi below). Tables are tiny: min(v, 2 * tau_hat) + 1
  // doubles. Keyed by extended size v; owns the storage the per-size
  // arrays below point into (node-based map: stable value addresses).
  std::unordered_map<int64_t, std::vector<double>> local_suffix_max;
  // Everything tier 1 needs is determined by the candidate's multiset size
  // alone (the query side is fixed), so it is computed once per distinct
  // size and the per-candidate check collapses to two array loads and two
  // compares. tier1_lb[s] == -1 marks an uncomputed slot; a size whose
  // extended v < 1 (empty query AND candidate) gets ub = +inf / table =
  // nullptr, i.e. never prunes and skips tier 2, exactly matching the
  // exhaustive scan's evaluation (which fails identically either way).
  std::vector<int64_t> tier1_lb;
  std::vector<double> tier1_ub;
  std::vector<const std::vector<double>*> table_by_size;
  // Tier-2 cut per size: the largest common-branch count that still proves
  // "strictly worse" (kCapUnset = not yet derived, -1 = nothing provable).
  // Valid only for the witness it was derived from; witnesses only improve
  // (tighten), so a stale cap is sound — it merely prunes less — and the
  // cache is invalidated whenever the witness moves.
  constexpr int64_t kCapUnset = std::numeric_limits<int64_t>::min();
  std::vector<int64_t> tier2_cap;
  double last_kth_phi = -1.0;
  int64_t last_kth_gbd = -1;
  double last_shared = -std::numeric_limits<double>::infinity();
  // Only the no-gamma, no-prefilter scan has a known match count (every
  // candidate); under the gamma cut or the prefilter the accepted set is
  // small in real workloads, so a modest reservation avoids the early
  // doubling churn without over-allocating per shard.
  const size_t expected =
      !ctx.apply_gamma && !options.use_prefilter
          ? range
          : std::min<size_t>(range, 64);
  result->matches.reserve(result->matches.size() + expected);
  // Scan-local Phi cache. tau_hat is fixed for the whole scan, so (v, phi)
  // keys the posterior value; a database scan repeats the same few hundred
  // pairs thousands of times, and answering repeats here — without the
  // engine's mutex + global-map round trip — is what keeps the per-candidate
  // cost near the branch intersection itself. Pure memoisation of a
  // deterministic function: results stay bit-identical, per shard and
  // serially (the engine's own cross-query memo is unchanged).
  std::unordered_map<uint64_t, double> local_phi;

  // The candidate's phi can only land at or above the phi_lb derived from
  // a common-branch UPPER bound: GBD (and, for w >= 0, the rounded VGBD —
  // llround is monotone) decreases as the common count grows. phi_lb also
  // bounds the ranking's gbd field directly (the scan stores the variant
  // phi there), so one quantity serves both the suffix-max lookup and the
  // tie-break test.
  const auto phi_lower = [&](int64_t max_size, int64_t common_ub) -> int64_t {
    if (options.variant == GbdaVariant::kWeightedGbd) {
      const double vgbd_lb =
          options.vgbd_w >= 0.0
              ? static_cast<double>(max_size) -
                    options.vgbd_w * static_cast<double>(common_ub)
              : static_cast<double>(max_size);
      return std::max<int64_t>(0,
                               static_cast<int64_t>(std::llround(vgbd_lb)));
    }
    return max_size - common_ub;
  };
  // Candidate-side sorted fingerprint keys for the tier-2 cut: the column
  // blob when the backing provides one (zero pointer chases), the
  // prefilter profile otherwise. Tier 2 is live whenever either source
  // exists — columns arm it even on scans that never built a Prefilter.
  const bool have_fps = columns.present() || prefilter != nullptr;
  const auto candidate_fps = [&](size_t id, size_t* n) -> const uint64_t* {
    if (columns.present()) {
      const uint64_t lo = columns.fp_offsets[id];
      *n = static_cast<size_t>(columns.fp_offsets[id + 1] - lo);
      return columns.fp_keys + lo;
    }
    const std::vector<uint64_t>& keys = prefilter->profile(id).branch_keys;
    *n = keys.size();
    return keys.data();
  };
  const uint64_t* query_keys = ctx.query_fps.data();
  const size_t query_keys_n = ctx.query_fps.size();

  // The scan runs in blocks: admission (stage A), then one batched bound
  // evaluation against the block-frozen witness state (stage B), then
  // scoring of the survivors (stage C). Freezing the witnesses for a block
  // prunes a SUBSET of what per-candidate refresh would prune, and pruning
  // only ever removes candidates provably outside the top-k, so the final
  // ranking stays bit-identical (the same argument that makes the
  // cross-shard witness — stale in exactly the same way — sound).
  // candidates_evaluated / prefiltered_out are stage-A facts and keep
  // their determinism contract; pruned_by_bound / verified_count move with
  // the block boundary but were already excluded from the bit-identity
  // gates (see SearchResult).
  //
  // Warm-up schedule: blocks double from 16 to 128. The witness only arms
  // at a block boundary, so a fixed 128 would leave small corpora (or the
  // head of any scan) entirely unpruned; starting small activates pruning
  // within the first dozen-odd candidates while steady state still runs
  // full-width batches. The schedule is a pure function of the iteration
  // count — independent of dispatch and of the data — so it cannot perturb
  // the bit-identity contract.
  constexpr size_t kScanBlockMax = 128;
  std::vector<size_t> blk_ids;
  blk_ids.reserve(kScanBlockMax);
  std::vector<uint32_t> blk_sizes(kScanBlockMax);
  std::vector<uint32_t> blk_lb(kScanBlockMax);
  std::vector<char> blk_keep(kScanBlockMax);

  size_t block_size = 16;
  for (size_t base = 0; base < range;
       block_size = std::min(kScanBlockMax, block_size * 2)) {
    const size_t block_begin = base;
    const size_t block_end = std::min(range, base + block_size);
    base = block_end;
    // -- Stage A: admission ------------------------------------------------
    blk_ids.clear();
    for (size_t i = block_begin; i < block_end; ++i) {
      const size_t id = id_seq[i];
      if (options.use_prefilter &&
          !prefilter->Passes(ctx.query_profile, id, options.tau_hat)) {
        ++result->prefiltered_out;
        continue;
      }
      // Deterministic by design: pruned candidates still count, so this
      // counter stays bit-identical to the exhaustive scan (see
      // SearchResult).
      ++result->candidates_evaluated;
      blk_ids.push_back(id);
    }
    if (blk_ids.empty()) continue;
    const size_t admitted = blk_ids.size();

    // -- Stage B: batched bounds under the block-frozen witness ------------
    bool do_prune = false;
    bool local_full = false;
    double shared_phi = -std::numeric_limits<double>::infinity();
    if (prune) {
      local_full = local_topk.size() >= bounds->k();
      shared_phi = bounds->threshold();
      do_prune = local_full || shared_phi >= 0.0;
    }
    if (do_prune) {
      for (size_t j = 0; j < admitted; ++j) {
        blk_sizes[j] = columns.present()
                           ? columns.sizes[blk_ids[j]]
                           : static_cast<uint32_t>(
                                 index.branch_set(blk_ids[j]).size());
      }
      // Tier 1 for the whole block in one kernel sweep: for non-weighted
      // variants the bound is exactly |query size - candidate size|.
      if (options.variant != GbdaVariant::kWeightedGbd) {
        kernels.tier1_size_bounds(blk_sizes.data(), admitted,
                                  static_cast<uint32_t>(query_branches.size()),
                                  blk_lb.data());
      }
      const double kth_phi = local_full ? local_topk.top().phi : -1.0;
      const int64_t kth_gbd = local_full ? local_topk.top().gbd : -1;
      if (kth_phi != last_kth_phi || kth_gbd != last_kth_gbd ||
          shared_phi != last_shared) {
        std::fill(tier2_cap.begin(), tier2_cap.end(), kCapUnset);
        last_kth_phi = kth_phi;
        last_kth_gbd = kth_gbd;
        last_shared = shared_phi;
      }
      // True when the candidate provably ranks strictly after a witness
      // of k matches under SearchMatchRankBefore: its best reachable
      // phi_score is strictly below a witness phi, or ties the local
      // witness while its gbd can only be strictly larger. Ties in both
      // must be evaluated — the id tie-break is not bounded.
      const auto strictly_worse = [&](double phi_ub, int64_t phi_lb) {
        if (phi_ub < shared_phi) return true;
        if (!local_full) return false;
        const Witness& kth = local_topk.top();
        return phi_ub < kth.phi || (phi_ub == kth.phi && phi_lb > kth.gbd);
      };
      for (size_t j = 0; j < admitted; ++j) {
        blk_keep[j] = 1;
        const size_t id = blk_ids[j];
        const size_t g_size = blk_sizes[j];
        const int64_t max_size =
            static_cast<int64_t>(std::max(query_branches.size(), g_size));
        if (g_size >= tier1_lb.size()) {
          tier1_lb.resize(g_size + 1, -1);
          tier1_ub.resize(g_size + 1, 0.0);
          table_by_size.resize(g_size + 1, nullptr);
          tier2_cap.resize(g_size + 1, kCapUnset);
        }
        if (tier1_lb[g_size] < 0) {
          // First candidate of this size: v is exact from sizes alone.
          const int64_t v = options.variant == GbdaVariant::kAverageSize
                                ? ctx.v1_size
                                : max_size;
          if (v >= 1) {
            auto table_it = local_suffix_max.find(v);
            if (table_it == local_suffix_max.end()) {
              Result<std::vector<double>> table =
                  posterior->PhiSuffixMax(v, options.tau_hat);
              if (!table.ok()) return table.status();
              table_it = local_suffix_max.emplace(v, std::move(*table)).first;
            }
            const std::vector<double>& suffix_max = table_it->second;
            table_by_size[g_size] = &suffix_max;
            // Tier 1: the common count never exceeds the smaller multiset
            // (the kernel sweep above already computed the non-weighted
            // bound for this block).
            const int64_t lb =
                options.variant == GbdaVariant::kWeightedGbd
                    ? phi_lower(max_size,
                                static_cast<int64_t>(std::min(
                                    query_branches.size(), g_size)))
                    : static_cast<int64_t>(blk_lb[j]);
            tier1_lb[g_size] = lb;
            tier1_ub[g_size] = static_cast<size_t>(lb) < suffix_max.size()
                                   ? suffix_max[static_cast<size_t>(lb)]
                                   : 0.0;  // past Phi's support: exact zero
          } else {
            tier1_lb[g_size] = std::numeric_limits<int64_t>::max();
            tier1_ub[g_size] = std::numeric_limits<double>::infinity();
          }
        }
        // Tier 1 costs two array loads; tier 2 a capped kernel merge,
        // still far cheaper than the full scoring it stands in for.
        bool pruned = strictly_worse(tier1_ub[g_size], tier1_lb[g_size]);
        if (!pruned && have_fps && table_by_size[g_size] != nullptr) {
          size_t cn = 0;
          const uint64_t* ck = candidate_fps(id, &cn);
          if (options.variant == GbdaVariant::kWeightedGbd) {
            // VGBD's rounding makes the phi_lb <-> common-cap inversion
            // fiddly; take the exact counting merge instead.
            const std::vector<double>& suffix_max = *table_by_size[g_size];
            const int64_t lb2 = phi_lower(
                max_size,
                kernels.intersect_count(query_keys, query_keys_n, ck, cn));
            const double ub2 = static_cast<size_t>(lb2) < suffix_max.size()
                                   ? suffix_max[static_cast<size_t>(lb2)]
                                   : 0.0;
            pruned = strictly_worse(ub2, lb2);
          } else {
            // phi_lb = max_size - common exactly, and strictly_worse is
            // monotone in phi_lb (the suffix max is non-increasing), so
            // "prune" is equivalent to common <= cap for the per-size cut
            // below — decidable by an early-exiting capped kernel merge.
            int64_t cap = tier2_cap[g_size];
            if (cap == kCapUnset) {
              const std::vector<double>& suffix_max = *table_by_size[g_size];
              // Tier 1 failed at tier1_lb, so the cut lies strictly above.
              int64_t p = tier1_lb[g_size] + 1;
              while (p <= max_size) {
                const double ub = static_cast<size_t>(p) < suffix_max.size()
                                      ? suffix_max[static_cast<size_t>(p)]
                                      : 0.0;
                if (strictly_worse(ub, p)) break;
                ++p;
              }
              cap = p > max_size ? -1 : max_size - p;
              tier2_cap[g_size] = cap;
            }
            pruned = cap >= 0 && kernels.intersect_at_most(
                                     query_keys, query_keys_n, ck, cn, cap);
          }
        }
        if (pruned) {
          ++result->pruned_by_bound;
          blk_keep[j] = 0;
        }
      }
    }

    // -- Stage C: score the survivors --------------------------------------
    for (size_t j = 0; j < admitted; ++j) {
      if (do_prune && !blk_keep[j]) continue;
      const size_t id = blk_ids[j];
      // Past every skip: this candidate pays the full scoring below.
      ++result->verified_count;

      int64_t phi;
      size_t g_size;
      if (fp_exact) {
        // Exact fingerprint scoring (see ScanContext::fp_exact): under the
        // certified-injective mapping the sorted-u64 intersection IS the
        // branch-multiset intersection, so the lexicographic branch merge
        // — and the candidate's branch arrays altogether — are never
        // touched.
        const uint64_t lo = columns.fp_offsets[id];
        const size_t cn =
            static_cast<size_t>(columns.fp_offsets[id + 1] - lo);
        g_size = cn;
        const int64_t common = kernels.intersect_count(
            query_keys, query_keys_n, columns.fp_keys + lo, cn);
        phi = static_cast<int64_t>(std::max(query_keys_n, cn)) - common;
      } else {
        const BranchSetRef g_branches = index.branch_set(id);
        g_size = g_branches.size();
        if (options.variant == GbdaVariant::kWeightedGbd) {
          const double vgbd =
              Vgbd(query_branches, g_branches, options.vgbd_w);
          phi = std::max<int64_t>(0, static_cast<int64_t>(std::llround(vgbd)));
        } else {
          phi = static_cast<int64_t>(
              GbdFromBranches(query_branches, g_branches));
        }
      }

      const int64_t v =
          options.variant == GbdaVariant::kAverageSize
              ? ctx.v1_size
              : static_cast<int64_t>(std::max(query_branches.size(), g_size));

      // v is bounded by vertex counts (LabelId-sized) so it always fits its
      // key half; phi normally is too, but the kWeightedGbd variant rounds
      // max_size - w * common with a caller-supplied w, which an extreme
      // weight can push past 32 bits — such pairs bypass the cache rather
      // than collide in it.
      double score;
      const bool cacheable = phi <= INT64_C(0xFFFFFFFF);
      const uint64_t key =
          (static_cast<uint64_t>(v) << 32) | static_cast<uint64_t>(phi);
      const auto cached = cacheable ? local_phi.find(key) : local_phi.end();
      if (cacheable && cached != local_phi.end()) {
        score = cached->second;
      } else {
        Result<double> phi_score = posterior->Phi(v, phi, options.tau_hat);
        if (!phi_score.ok()) return phi_score.status();
        score = *phi_score;
        if (cacheable) local_phi.emplace(key, score);
      }
      if (!ctx.apply_gamma || score >= options.gamma) {
        result->matches.push_back(SearchMatch{id, score, phi});
        if (prune) {
          // Fold the match into the local top-k and publish the k-th-best
          // phi whenever the full heap's root improves — one shard's strong
          // hits then prune the other shards' tails through the shared
          // bound. (Only phi is shared: a two-field witness would need a
          // 16-byte atomic to stay tear-free; the local heap keeps the full
          // (phi, gbd) pair for the tie-break test.) The improved witness
          // takes effect at the next block boundary.
          const Witness candidate{score, phi};
          if (local_topk.size() < bounds->k()) {
            local_topk.push(candidate);
            if (local_topk.size() == bounds->k()) {
              bounds->Publish(local_topk.top().phi);
            }
          } else if (witness_rank_before(candidate, local_topk.top())) {
            local_topk.pop();
            local_topk.push(candidate);
            bounds->Publish(local_topk.top().phi);
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ScanRange(const ScanContext& ctx, const IndexReader& index,
                 const Prefilter* prefilter, size_t begin, size_t end,
                 PosteriorEngine* posterior, SearchResult* result,
                 ScanBounds* bounds) {
  return ScanIdSequence(ctx, index, prefilter,
                        ContiguousIds{begin, end - begin}, posterior, result,
                        bounds);
}

Status ScanCandidateList(const ScanContext& ctx, const IndexReader& index,
                         const Prefilter* prefilter,
                         const std::vector<uint32_t>& ids,
                         PosteriorEngine* posterior, SearchResult* result,
                         ScanBounds* bounds) {
  // The range scan's bounds are implicit in [0, num_graphs); a listed id is
  // caller data (the navigator, or eventually a wire client), so check it
  // before branch_set() would read out of bounds.
  for (uint32_t id : ids) {
    if (id >= index.num_graphs()) {
      return Status::InvalidArgument(
          "candidate id " + std::to_string(id) +
          " out of range for index of " + std::to_string(index.num_graphs()) +
          " graphs");
    }
  }
  return ScanIdSequence(ctx, index, prefilter, ListedIds{ids.data(), ids.size()},
                        posterior, result, bounds);
}

Result<std::unique_ptr<GbdaSearch>> GbdaSearch::Create(
    const GraphDatabase* db, const IndexReader* index) {
  Status agree = ValidateIndexForDatabase(*db, *index);
  if (!agree.ok()) return agree;
  return std::make_unique<GbdaSearch>(db, index);
}

GbdaSearch::GbdaSearch(const GraphDatabase* db, const IndexReader* index)
    : db_(db),
      index_(index),
      posterior_(index->num_vertex_labels(), index->num_edge_labels(),
                 index->tau_max(), index->mutable_ged_prior(),
                 &index->gbd_prior()) {}

Result<SearchResult> GbdaSearch::Scan(const Graph& query,
                                      const SearchOptions& options,
                                      bool apply_gamma, size_t top_k) {
  WallTimer timer;
  // Retired db slots would otherwise still be scanned (their index entries
  // are intact); PrepareScan catches the tombstoned-index direction.
  if (db_->has_tombstones()) {
    return Status::FailedPrecondition(
        "database is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  Result<ScanContext> ctx =
      PrepareScan(query, options, apply_gamma, CorpusRef(db_), *index_);
  if (!ctx.ok()) return ctx.status();
  // Touch prefilter_ only on the use_prefilter branch: a non-prefiltered
  // query reading the pointer while another thread's call_once is
  // constructing it would be an unsynchronized read.
  //
  // k >= corpus can never prune (no k strictly-better matches exist), so
  // such scans skip the heap bookkeeping entirely and run exhaustively.
  const bool early_terminate = !apply_gamma && top_k != kScanAllMatches &&
                               top_k < db_->size() &&
                               options.topk_early_termination;
  // Armed ranking scans build the prefilter too: its profiles sharpen the
  // early-termination bound (see ScanRange) even when the pass/fail layer
  // stays off — one lazy O(corpus) build, amortized across all queries.
  const Prefilter* prefilter = nullptr;
  if (options.use_prefilter || early_terminate) {
    std::call_once(prefilter_once_,
                   [this] { prefilter_ = std::make_unique<Prefilter>(db_); });
    prefilter = prefilter_.get();
  }
  SearchResult result;
  ScanBounds bounds(top_k);
  Status scan = ScanRange(*ctx, *index_, prefilter, 0, db_->size(),
                          &posterior_, &result,
                          early_terminate ? &bounds : nullptr);
  if (!scan.ok()) return scan;
  result.seconds = timer.Seconds();
  return result;
}

Result<SearchResult> GbdaSearch::Query(const Graph& query,
                                       const SearchOptions& options) {
  return Scan(query, options, /*apply_gamma=*/true);
}

Result<SearchResult> GbdaSearch::QueryTopK(const Graph& query, size_t k,
                                           const SearchOptions& options) {
  // k == 0 asks for an empty ranking: defined as an empty result, decided
  // here at the API boundary so no scan runs (see kScanAllMatches).
  if (k == 0) return SearchResult{};
  // Clamp below the sentinel (as the service layers do) so an oversized k
  // cannot disarm the ranking sort; a scan never yields more matches than
  // the database has graphs, so the clamp is behavior-free.
  k = std::min(k, db_->size());
  Result<SearchResult> scan = Scan(query, options, /*apply_gamma=*/false, k);
  if (!scan.ok()) return scan.status();
  SearchResult result = std::move(*scan);
  SortTopK(&result.matches, k);
  return result;
}

}  // namespace gbda
