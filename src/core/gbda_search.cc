#include "core/gbda_search.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace gbda {

GbdaSearch::GbdaSearch(const GraphDatabase* db, GbdaIndex* index)
    : db_(db),
      index_(index),
      posterior_(index->num_vertex_labels(), index->num_edge_labels(),
                 index->tau_max(), &index->ged_prior(), &index->gbd_prior()),
      prefilter_(db) {}

Result<SearchResult> GbdaSearch::Scan(const Graph& query,
                                      const SearchOptions& options,
                                      bool apply_gamma) {
  if (options.tau_hat < 0 || options.tau_hat > index_->tau_max()) {
    return Status::InvalidArgument(
        "tau_hat outside the range supported by this index");
  }
  WallTimer timer;
  SearchResult result;
  const BranchMultiset query_branches = ExtractBranches(query);
  const FilterProfile query_profile =
      options.use_prefilter ? BuildFilterProfile(query) : FilterProfile{};

  // GBDA-V1 replaces the pair-specific |V'1| by a database average estimated
  // from alpha sampled graphs.
  int64_t v1_size = 0;
  if (options.variant == GbdaVariant::kAverageSize) {
    Rng rng(options.seed);
    const size_t alpha = std::max<size_t>(
        1, std::min(options.v1_sample_alpha, db_->size()));
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(db_->size(), alpha);
    double sum = 0.0;
    for (size_t id : picks) {
      sum += static_cast<double>(db_->graph(id).num_vertices());
    }
    v1_size = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(sum / static_cast<double>(alpha))));
  }

  for (size_t id = 0; id < db_->size(); ++id) {
    if (options.use_prefilter &&
        !prefilter_.Passes(query_profile, id, options.tau_hat)) {
      ++result.prefiltered_out;
      continue;
    }
    const BranchMultiset& g_branches = index_->branches(id);
    ++result.candidates_evaluated;

    int64_t phi;
    if (options.variant == GbdaVariant::kWeightedGbd) {
      const double vgbd = Vgbd(query_branches, g_branches, options.vgbd_w);
      phi = std::max<int64_t>(0, static_cast<int64_t>(std::llround(vgbd)));
    } else {
      phi = static_cast<int64_t>(GbdFromBranches(query_branches, g_branches));
    }

    const int64_t v =
        options.variant == GbdaVariant::kAverageSize
            ? v1_size
            : static_cast<int64_t>(
                  std::max(query_branches.size(), g_branches.size()));

    Result<double> phi_score = posterior_.Phi(v, phi, options.tau_hat);
    if (!phi_score.ok()) return phi_score.status();
    if (!apply_gamma || *phi_score >= options.gamma) {
      result.matches.push_back(SearchMatch{id, *phi_score, phi});
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

Result<SearchResult> GbdaSearch::Query(const Graph& query,
                                       const SearchOptions& options) {
  return Scan(query, options, /*apply_gamma=*/true);
}

Result<SearchResult> GbdaSearch::QueryTopK(const Graph& query, size_t k,
                                           const SearchOptions& options) {
  Result<SearchResult> scan = Scan(query, options, /*apply_gamma=*/false);
  if (!scan.ok()) return scan.status();
  SearchResult result = std::move(*scan);
  std::sort(result.matches.begin(), result.matches.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.phi_score != b.phi_score) return a.phi_score > b.phi_score;
              if (a.gbd != b.gbd) return a.gbd < b.gbd;
              return a.graph_id < b.graph_id;
            });
  if (result.matches.size() > k) result.matches.resize(k);
  return result;
}

}  // namespace gbda
