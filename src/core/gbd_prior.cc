#include "core/gbd_prior.h"

#include <algorithm>

namespace gbda {

Result<GbdPrior> GbdPrior::Fit(const std::vector<BranchMultiset>& branches,
                               const GbdPriorOptions& options, Rng* rng) {
  std::vector<const BranchMultiset*> ptrs;
  ptrs.reserve(branches.size());
  for (const BranchMultiset& b : branches) ptrs.push_back(&b);
  return Fit(ptrs, options, rng);
}

Result<GbdPrior> GbdPrior::Fit(const std::vector<const BranchMultiset*>& branches,
                               const GbdPriorOptions& options, Rng* rng) {
  const size_t n = branches.size();
  if (n < 2) {
    return Status::InvalidArgument("GBD prior: need at least two graphs");
  }
  size_t max_v = 0;
  for (const auto* b : branches) max_v = std::max(max_v, b->size());

  // Collect GBD samples over pairs.
  std::vector<double> samples;
  const uint64_t total_pairs =
      static_cast<uint64_t>(n) * static_cast<uint64_t>(n - 1) / 2;
  if (total_pairs <= options.num_sample_pairs) {
    samples.reserve(static_cast<size_t>(total_pairs));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        samples.push_back(
            static_cast<double>(GbdFromBranches(*branches[i], *branches[j])));
      }
    }
  } else {
    samples.reserve(options.num_sample_pairs);
    while (samples.size() < options.num_sample_pairs) {
      const size_t i =
          static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      const size_t j =
          static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      if (i == j) continue;
      samples.push_back(
          static_cast<double>(GbdFromBranches(*branches[i], *branches[j])));
    }
  }

  GbdPrior prior;
  prior.pairs_sampled_ = samples.size();
  prior.floor_ = options.probability_floor;
  prior.histogram_.assign(max_v + 1, 0);
  for (double s : samples) {
    const size_t phi = static_cast<size_t>(s);
    if (phi < prior.histogram_.size()) ++prior.histogram_[phi];
  }

  Result<GaussianMixture> gmm = GaussianMixture::Fit(samples, options.gmm);
  if (!gmm.ok()) return gmm.status();
  prior.gmm_ = std::move(*gmm);

  prior.table_.resize(max_v + 1);
  for (size_t phi = 0; phi <= max_v; ++phi) {
    prior.table_[phi] = prior.gmm_.IntervalProbability(
        static_cast<double>(phi) - 0.5, static_cast<double>(phi) + 0.5);
  }
  return prior;
}

double GbdPrior::Probability(int64_t phi) const {
  double p = 0.0;
  if (phi >= 0 && phi < static_cast<int64_t>(table_.size())) {
    p = table_[static_cast<size_t>(phi)];
  } else if (phi >= 0) {
    // phi beyond the tabulated range (e.g. a query larger than any database
    // graph): fall back to the continuous mixture.
    p = gmm_.IntervalProbability(static_cast<double>(phi) - 0.5,
                                 static_cast<double>(phi) + 0.5);
  }
  return std::max(p, floor_);
}

size_t GbdPrior::MemoryBytes() const {
  return sizeof(GbdPrior) + table_.capacity() * sizeof(double) +
         histogram_.capacity() * sizeof(size_t) +
         gmm_.components().capacity() * sizeof(GmmComponent);
}

void GbdPrior::Serialize(BinaryWriter* writer) const {
  writer->PutU64(pairs_sampled_);
  writer->PutDouble(floor_);
  writer->PutU64(gmm_.components().size());
  for (const GmmComponent& c : gmm_.components()) {
    writer->PutDouble(c.weight);
    writer->PutDouble(c.mean);
    writer->PutDouble(c.stddev);
  }
  writer->PutPodVector(table_);
  writer->PutPodVector(histogram_);
}

Result<GbdPrior> GbdPrior::Deserialize(BinaryReader* reader) {
  GbdPrior prior;
  Result<uint64_t> pairs = reader->GetU64();
  if (!pairs.ok()) return pairs.status();
  prior.pairs_sampled_ = *pairs;
  Result<double> floor = reader->GetDouble();
  if (!floor.ok()) return floor.status();
  prior.floor_ = *floor;
  Result<uint64_t> ncomp = reader->GetU64();
  if (!ncomp.ok()) return ncomp.status();
  // Each component occupies three doubles; a larger count cannot be honest.
  if (*ncomp > reader->remaining() / (3 * sizeof(double))) {
    return Status::OutOfRange("GBD prior: component count exceeds file size");
  }
  std::vector<GmmComponent> comps;
  comps.reserve(static_cast<size_t>(*ncomp));
  for (uint64_t i = 0; i < *ncomp; ++i) {
    GmmComponent c;
    Result<double> w = reader->GetDouble();
    if (!w.ok()) return w.status();
    Result<double> mu = reader->GetDouble();
    if (!mu.ok()) return mu.status();
    Result<double> sd = reader->GetDouble();
    if (!sd.ok()) return sd.status();
    c.weight = *w;
    c.mean = *mu;
    c.stddev = *sd;
    comps.push_back(c);
  }
  Result<GaussianMixture> gmm = GaussianMixture::FromComponents(std::move(comps));
  if (!gmm.ok()) return gmm.status();
  prior.gmm_ = std::move(*gmm);
  Result<std::vector<double>> table = reader->GetPodVector<double>();
  if (!table.ok()) return table.status();
  prior.table_ = std::move(*table);
  Result<std::vector<size_t>> hist = reader->GetPodVector<size_t>();
  if (!hist.ok()) return hist.status();
  prior.histogram_ = std::move(*hist);
  return prior;
}

}  // namespace gbda
