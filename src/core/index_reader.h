/// \file index_reader.h
/// The read surface of a GBDA index — the contract the online scan
/// (PrepareScan / ScanRange), the posterior-engine construction and the
/// serving layer consume. Two implementations exist:
///
///   - GbdaIndex (core/gbda_index.h): the decoded, heap-owning index the
///     offline stage builds and the dynamic corpus maintains incrementally;
///   - GbdaIndexView (storage/index_view.h): a non-owning view over a mapped
///     v3 arena artifact that serves branch multisets in place, with zero
///     deserialization (docs/ARCHITECTURE.md, "Storage engine").
///
/// Everything downstream of the offline stage — GbdaSearch, GbdaService,
/// DynamicGbdaService snapshots, IndexShards — speaks this interface, so an
/// owned index and a mapped artifact are interchangeable and bit-identical
/// in query results. Implementations must be internally synchronized for
/// concurrent readers (branch data immutable; GedPriorTable locks its lazy
/// row cache).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/branch.h"

namespace gbda {

class GbdPrior;
class GedPriorTable;
struct GbdaIndexOptions;

class IndexReader {
 public:
  virtual ~IndexReader() = default;

  /// Total id slots (dense scan range is [0, num_graphs())).
  virtual size_t num_graphs() const = 0;
  /// Live (non-tombstoned) slots; frozen consumers require
  /// num_live() == num_graphs().
  virtual size_t num_live() const = 0;
  /// Mutations absorbed since Lambda2 was last fit (always 0 for persisted
  /// artifacts: both formats refuse to encode a drifted prior).
  virtual size_t gbd_staleness() const = 0;

  /// The branch multiset of graph `id` as a non-owning view; empty for a
  /// tombstoned slot. Valid while the index outlives the ref.
  virtual BranchSetRef branch_set(size_t id) const = 0;

  /// The offline-stage options this index was built with (persisted by both
  /// artifact formats so a converted or reloaded index refits Lambda2 with
  /// Build's exact arithmetic).
  virtual const GbdaIndexOptions& options() const = 0;

  virtual int64_t tau_max() const = 0;
  virtual int64_t num_vertex_labels() const = 0;
  virtual int64_t num_edge_labels() const = 0;
  /// Mean vertex count over live graphs (the GBDA-V1 size estimate's
  /// database-level analogue; persisted in both formats).
  virtual double avg_vertices() const = 0;

  /// The GMM prior of GBD values (Lambda2). Immutable and shared.
  virtual const GbdPrior& gbd_prior() const = 0;
  /// The Jeffreys prior table (Lambda3). Non-const because rows build
  /// lazily at query time; the table is internally synchronized, so handing
  /// it to concurrent PosteriorEngine replicas is safe.
  virtual GedPriorTable* mutable_ged_prior() const = 0;
};

}  // namespace gbda
