/// \file index_reader.h
/// The read surface of a GBDA index — the contract the online scan
/// (PrepareScan / ScanRange), the posterior-engine construction and the
/// serving layer consume. Two implementations exist:
///
///   - GbdaIndex (core/gbda_index.h): the decoded, heap-owning index the
///     offline stage builds and the dynamic corpus maintains incrementally;
///   - GbdaIndexView (storage/index_view.h): a non-owning view over a mapped
///     v3 arena artifact that serves branch multisets in place, with zero
///     deserialization (docs/ARCHITECTURE.md, "Storage engine").
///
/// Everything downstream of the offline stage — GbdaSearch, GbdaService,
/// DynamicGbdaService snapshots, IndexShards — speaks this interface, so an
/// owned index and a mapped artifact are interchangeable and bit-identical
/// in query results. Implementations must be internally synchronized for
/// concurrent readers (branch data immutable; GedPriorTable locks its lazy
/// row cache).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/branch.h"

namespace gbda {

class GbdPrior;
class GedPriorTable;
struct GbdaIndexOptions;

/// The structure-of-arrays candidate columns the batched scan kernels
/// (common/kernels.h) feed on — per-graph scalars and fingerprint keys laid
/// out contiguously so a shard's candidates are evaluated as column sweeps
/// instead of per-graph pointer chases (docs/ARCHITECTURE.md, "Scan kernels
/// & column layout"). Two backings share this one view:
///
///   - a mapped v3 arena exposes its column sections in place (64-byte
///     aligned by the format; storage/index_view.h);
///   - a decoded GbdaIndex (and thus every dynamic snapshot) materialises
///     the same columns on the fly from its branch multisets, lazily and
///     once (core/candidate_columns.h).
///
/// All pointers are non-owning; they stay valid while the index lives and
/// is not mutated (the same lifetime branch_set() refs have). A default
/// (empty) value means the backing provides no columns — e.g. a pre-column
/// v3 artifact — and consumers fall back to branch_set() pointer walks.
struct CandidateColumns {
  /// sizes[g] = |B_g| (= |V_g| for ordinary graphs), the branch count of
  /// graph g; num_graphs() entries. The tier-1 size-bound column.
  const uint32_t* sizes = nullptr;
  /// fp_offsets[g] .. fp_offsets[g+1] bound graph g's keys in fp_keys;
  /// num_graphs() + 1 entries, identical to the branch_start table (one
  /// fingerprint per branch).
  const uint64_t* fp_offsets = nullptr;
  /// One packed blob of per-graph ASCENDING branch-fingerprint keys
  /// (FilterProfile::branch_keys semantics: FNV-1a over root + ascending
  /// edge-label multiset); total-branch entries.
  const uint64_t* fp_keys = nullptr;
  /// Optional collision directory certifying fingerprint EXACTNESS for this
  /// corpus: fp_unique is the ascending set of distinct fingerprints over
  /// every corpus branch, fp_rep[i] packs a representative branch holding
  /// fp_unique[i] as (graph_id << 32 | branch_index). The directory is
  /// emitted only when the fingerprint -> branch-content mapping is
  /// INJECTIVE corpus-wide, so a query whose own branches also pass the
  /// collision audit (PrepareScan) may compute exact branch intersections
  /// as fingerprint intersections. nullptr when the corpus has a collision
  /// (astronomically rare at 64 bits) or the backing predates the columns.
  const uint64_t* fp_unique = nullptr;
  const uint64_t* fp_rep = nullptr;
  uint64_t num_distinct = 0;

  /// The tier-1/tier-2 columns are usable (sizes + fingerprint blob).
  bool present() const {
    return sizes != nullptr && fp_offsets != nullptr && fp_keys != nullptr;
  }
  /// The corpus additionally certifies collision-free fingerprints, so
  /// fingerprint intersections of audited queries are exact.
  bool exactness_certified() const {
    return present() && fp_unique != nullptr && fp_rep != nullptr;
  }
};

class IndexReader {
 public:
  virtual ~IndexReader() = default;

  /// Total id slots (dense scan range is [0, num_graphs())).
  virtual size_t num_graphs() const = 0;
  /// Live (non-tombstoned) slots; frozen consumers require
  /// num_live() == num_graphs().
  virtual size_t num_live() const = 0;
  /// Mutations absorbed since Lambda2 was last fit (always 0 for persisted
  /// artifacts: both formats refuse to encode a drifted prior).
  virtual size_t gbd_staleness() const = 0;

  /// The branch multiset of graph `id` as a non-owning view; empty for a
  /// tombstoned slot. Valid while the index outlives the ref.
  virtual BranchSetRef branch_set(size_t id) const = 0;

  /// The SoA candidate columns of this backing (see CandidateColumns), or
  /// an empty value when it provides none — consumers must handle both.
  /// Implementations must keep this safe for concurrent readers; returned
  /// pointers follow branch_set()'s lifetime rules.
  virtual CandidateColumns columns() const { return CandidateColumns(); }

  /// The offline-stage options this index was built with (persisted by both
  /// artifact formats so a converted or reloaded index refits Lambda2 with
  /// Build's exact arithmetic).
  virtual const GbdaIndexOptions& options() const = 0;

  virtual int64_t tau_max() const = 0;
  virtual int64_t num_vertex_labels() const = 0;
  virtual int64_t num_edge_labels() const = 0;
  /// Mean vertex count over live graphs (the GBDA-V1 size estimate's
  /// database-level analogue; persisted in both formats).
  virtual double avg_vertices() const = 0;

  /// The GMM prior of GBD values (Lambda2). Immutable and shared.
  virtual const GbdPrior& gbd_prior() const = 0;
  /// The Jeffreys prior table (Lambda3). Non-const because rows build
  /// lazily at query time; the table is internally synchronized, so handing
  /// it to concurrent PosteriorEngine replicas is safe.
  virtual GedPriorTable* mutable_ged_prior() const = 0;
};

}  // namespace gbda
