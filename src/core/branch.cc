#include "core/branch.h"

#include <algorithm>

#include "math/dense_matrix.h"
#include "math/hungarian.h"

namespace gbda {

BranchMultiset ExtractBranches(const Graph& g) {
  BranchMultiset branches;
  branches.reserve(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    Branch b;
    b.root = g.VertexLabel(v);
    b.edge_labels.reserve(g.Degree(v));
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (e.label != kVirtualLabel) b.edge_labels.push_back(e.label);
    }
    std::sort(b.edge_labels.begin(), b.edge_labels.end());
    branches.push_back(std::move(b));
  }
  std::sort(branches.begin(), branches.end());
  return branches;
}

namespace {

/// Three-way lexicographic comparison of two ascending label runs — the
/// exact order of std::vector<LabelId>::operator<.
inline int CompareLabels(const LabelId* a, size_t na, const LabelId* b,
                         size_t nb) {
  const size_t n = std::min(na, nb);
  for (size_t k = 0; k < n; ++k) {
    if (a[k] != b[k]) return a[k] < b[k] ? -1 : 1;
  }
  if (na != nb) return na < nb ? -1 : 1;
  return 0;
}

/// One branch presented as raw pointers, so the merge loops below are
/// backing-agnostic after a single per-multiset dispatch. Branch order is
/// (root, labels) — exactly Branch::operator< — for every accessor pair, so
/// every backing combination counts intersections bit-identically.
struct RawBranch {
  LabelId root;
  const LabelId* labels;
  size_t num_labels;
};

struct OwnedAccess {
  const Branch* branches;
  inline RawBranch Get(size_t i) const {
    const Branch& b = branches[i];
    return RawBranch{b.root, b.edge_labels.data(), b.edge_labels.size()};
  }
};

struct FlatAccess {
  const uint32_t* roots;
  const uint64_t* offsets;
  const LabelId* pool;
  inline RawBranch Get(size_t i) const {
    return RawBranch{roots[i], pool + offsets[i],
                     static_cast<size_t>(offsets[i + 1] - offsets[i])};
  }
};

/// The two-pointer merge, monomorphised per backing pair. Root labels
/// resolve most steps (one integer compare); the label runs are touched
/// only on root ties. The current branch of each side is cached so one
/// merge step re-reads only the side it advanced.
template <typename AccessA, typename AccessB>
size_t MergeCount(const AccessA& a, size_t na, const AccessB& b, size_t nb) {
  size_t i = 0, j = 0, common = 0;
  RawBranch ba = a.Get(0);
  RawBranch bb = b.Get(0);
  for (;;) {
    int cmp;
    if (ba.root != bb.root) {
      cmp = ba.root < bb.root ? -1 : 1;
    } else {
      cmp = CompareLabels(ba.labels, ba.num_labels, bb.labels, bb.num_labels);
    }
    if (cmp == 0) {
      ++common;
      ++i;
      ++j;
      if (i == na || j == nb) break;
      ba = a.Get(i);
      bb = b.Get(j);
    } else if (cmp < 0) {
      if (++i == na) break;
      ba = a.Get(i);
    } else {
      if (++j == nb) break;
      bb = b.Get(j);
    }
  }
  return common;
}

template <typename AccessA>
size_t MergeCountRight(const AccessA& a, size_t na, const BranchSetRef& b) {
  if (b.size() == 0) return 0;
  if (b.owned() != nullptr) {
    return MergeCount(a, na, OwnedAccess{b.owned()->data()}, b.size());
  }
  return MergeCount(
      a, na,
      FlatAccess{b.flat_roots(), b.flat_label_offsets(), b.flat_label_pool()},
      b.size());
}

}  // namespace

size_t BranchIntersectionSize(const BranchSetRef& a, const BranchSetRef& b) {
  if (a.size() == 0) return 0;
  if (a.owned() != nullptr) {
    return MergeCountRight(OwnedAccess{a.owned()->data()}, a.size(), b);
  }
  return MergeCountRight(
      FlatAccess{a.flat_roots(), a.flat_label_offsets(), a.flat_label_pool()},
      a.size(), b);
}

// The owned/owned overload is the same merge through OwnedAccess — one
// implementation to keep, so the order used here can never drift from the
// one the mapped-artifact path uses (the bit-identity guarantee of
// docs/ARCHITECTURE.md, "Storage engine").
size_t BranchIntersectionSize(const BranchMultiset& a,
                              const BranchMultiset& b) {
  return BranchIntersectionSize(BranchSetRef(a), BranchSetRef(b));
}

size_t Gbd(const Graph& g1, const Graph& g2) {
  return GbdFromBranches(ExtractBranches(g1), ExtractBranches(g2));
}

size_t GbdFromBranches(const BranchMultiset& b1, const BranchMultiset& b2) {
  const size_t max_size = std::max(b1.size(), b2.size());
  return max_size - BranchIntersectionSize(b1, b2);
}

double Vgbd(const BranchMultiset& b1, const BranchMultiset& b2, double w) {
  const double max_size = static_cast<double>(std::max(b1.size(), b2.size()));
  return max_size - w * static_cast<double>(BranchIntersectionSize(b1, b2));
}

size_t GbdFromBranches(const BranchSetRef& b1, const BranchSetRef& b2) {
  return std::max(b1.size(), b2.size()) - BranchIntersectionSize(b1, b2);
}

double Vgbd(const BranchSetRef& b1, const BranchSetRef& b2, double w) {
  const double max_size = static_cast<double>(std::max(b1.size(), b2.size()));
  return max_size - w * static_cast<double>(BranchIntersectionSize(b1, b2));
}

namespace {

/// Multiset edit distance between two sorted label multisets:
/// max(|A|,|B|) - |A ∩ B|.
size_t SortedMultisetDiff(const std::vector<LabelId>& a,
                          const std::vector<LabelId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return std::max(a.size(), b.size()) - common;
}

}  // namespace

double BranchGedLowerBound(const Graph& g1, const Graph& g2) {
  const BranchMultiset b1 = ExtractBranches(g1);
  const BranchMultiset b2 = ExtractBranches(g2);
  const size_t n = std::max(b1.size(), b2.size());
  if (n == 0) return 0.0;
  const Branch empty;  // virtual padding branch: epsilon root, no edges

  DenseMatrix cost(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const Branch& bi = i < b1.size() ? b1[i] : empty;
    for (size_t j = 0; j < n; ++j) {
      const Branch& bj = j < b2.size() ? b2[j] : empty;
      const double root_cost = bi.root == bj.root ? 0.0 : 1.0;
      const double edge_cost =
          0.5 * static_cast<double>(SortedMultisetDiff(bi.edge_labels, bj.edge_labels));
      cost.At(i, j) = root_cost + edge_cost;
    }
  }
  Result<AssignmentResult> solved = SolveAssignment(cost);
  if (!solved.ok()) return 0.0;  // n >= 1 and square: cannot happen
  return solved->cost;
}

}  // namespace gbda
