#include "core/branch.h"

#include <algorithm>

#include "math/dense_matrix.h"
#include "math/hungarian.h"

namespace gbda {

BranchMultiset ExtractBranches(const Graph& g) {
  BranchMultiset branches;
  branches.reserve(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    Branch b;
    b.root = g.VertexLabel(v);
    b.edge_labels.reserve(g.Degree(v));
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (e.label != kVirtualLabel) b.edge_labels.push_back(e.label);
    }
    std::sort(b.edge_labels.begin(), b.edge_labels.end());
    branches.push_back(std::move(b));
  }
  std::sort(branches.begin(), branches.end());
  return branches;
}

size_t BranchIntersectionSize(const BranchMultiset& a, const BranchMultiset& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

size_t Gbd(const Graph& g1, const Graph& g2) {
  return GbdFromBranches(ExtractBranches(g1), ExtractBranches(g2));
}

size_t GbdFromBranches(const BranchMultiset& b1, const BranchMultiset& b2) {
  const size_t max_size = std::max(b1.size(), b2.size());
  return max_size - BranchIntersectionSize(b1, b2);
}

double Vgbd(const BranchMultiset& b1, const BranchMultiset& b2, double w) {
  const double max_size = static_cast<double>(std::max(b1.size(), b2.size()));
  return max_size - w * static_cast<double>(BranchIntersectionSize(b1, b2));
}

namespace {

/// Multiset edit distance between two sorted label multisets:
/// max(|A|,|B|) - |A ∩ B|.
size_t SortedMultisetDiff(const std::vector<LabelId>& a,
                          const std::vector<LabelId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return std::max(a.size(), b.size()) - common;
}

}  // namespace

double BranchGedLowerBound(const Graph& g1, const Graph& g2) {
  const BranchMultiset b1 = ExtractBranches(g1);
  const BranchMultiset b2 = ExtractBranches(g2);
  const size_t n = std::max(b1.size(), b2.size());
  if (n == 0) return 0.0;
  const Branch empty;  // virtual padding branch: epsilon root, no edges

  DenseMatrix cost(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const Branch& bi = i < b1.size() ? b1[i] : empty;
    for (size_t j = 0; j < n; ++j) {
      const Branch& bj = j < b2.size() ? b2[j] : empty;
      const double root_cost = bi.root == bj.root ? 0.0 : 1.0;
      const double edge_cost =
          0.5 * static_cast<double>(SortedMultisetDiff(bi.edge_labels, bj.edge_labels));
      cost.At(i, j) = root_cost + edge_cost;
    }
  }
  Result<AssignmentResult> solved = SolveAssignment(cost);
  if (!solved.ok()) return 0.0;  // n >= 1 and square: cannot happen
  return solved->cost;
}

}  // namespace gbda
