/// \file posterior.h
/// Step 3 of Algorithm 1: the Bayesian accept test. PosteriorEngine
/// combines the conditional Lambda1 = Pr[GBD | GED] (Eq. 8/27, via
/// Lambda1Calculator), the GMM prior Lambda2 = Pr[GBD] and the Jeffreys
/// prior Lambda3 = Pr[GED] into Phi = Pr[GED <= tau_hat | GBD], the value
/// Step 4 compares against gamma. Per-size calculators and (v, phi,
/// tau_hat) results are memoised so a database scan pays O(tau_hat^3) only
/// for distinct extended sizes, keeping the per-graph online cost at the
/// O(nd + tau_hat^3) of Theorem 3.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/gbd_prior.h"
#include "core/ged_prior.h"
#include "core/lambda1.h"

namespace gbda {

/// Evaluates Step 3 of Algorithm 1:
///   Phi = Pr[GED <= tau_hat | GBD = phi]
///       = sum_{tau=0}^{tau_hat} Lambda1(tau,phi) * Lambda3(tau) / Lambda2(phi).
///
/// Lambda1 columns are produced by a per-size Lambda1Calculator; calculators
/// and (v, phi, tau_hat) -> Phi results are memoised because a database scan
/// evaluates the same extended sizes and GBD values over and over. Phi can
/// exceed 1 since the GMM prior Lambda2 is not the exact marginal of
/// Lambda1 * Lambda3; the raw value is compared against gamma exactly as the
/// paper does (see docs/ARCHITECTURE.md).
class PosteriorEngine {
 public:
  /// The priors must outlive the engine. `tau_max` bounds the tau_hat values
  /// that can be queried.
  PosteriorEngine(int64_t num_vertex_labels, int64_t num_edge_labels,
                  int64_t tau_max, GedPriorTable* ged_prior,
                  const GbdPrior* gbd_prior);

  /// Phi for extended size v and observed GBD = phi. Fails when
  /// tau_hat > tau_max.
  Result<double> Phi(int64_t v, int64_t phi, int64_t tau_hat);

  /// Monotone pruning hook for top-k early termination (docs/ARCHITECTURE.md,
  /// "Serving layer"). Phi is not monotone in phi (the GMM prior Lambda2 in
  /// the denominator can dip), so the sound majorant is the suffix maximum:
  /// returns T with T[p] = max over phi' in [p, cap] of Phi(v, phi', tau_hat),
  /// cap = min(v, 2 * tau_hat). Phi(v, phi', tau_hat) == 0.0 exactly for
  /// phi' > cap — a GED <= tau_hat perturbation touches r <= min(2*tau_hat, v)
  /// branches and Omega3 (a Binomial(r, .) pmf) is identically zero past its
  /// support — so for ANY achievable phi >= p,
  ///   Phi(v, phi, tau_hat) <= (p <= cap ? T[p] : 0.0).
  /// The table entries are this engine's own memoised Phi doubles, so the
  /// inequality holds exactly (not just up to rounding) against the values a
  /// scan computes. Memoised per (v, tau_hat); the (cap + 1)-entry build also
  /// warms the Phi memo, costing one Column per phi only on first use.
  Result<std::vector<double>> PhiSuffixMax(int64_t v, int64_t tau_hat);

  /// Scalar convenience form: max over phi >= phi_lower of
  /// Phi(v, phi, tau_hat), i.e. PhiSuffixMax clamped to 0 past the support.
  Result<double> PhiUpperBound(int64_t v, int64_t phi_lower, int64_t tau_hat);

  int64_t tau_max() const { return tau_max_; }
  size_t memo_hits() const GBDA_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return memo_hits_;
  }
  size_t memo_misses() const GBDA_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return memo_misses_;
  }

 private:
  const Lambda1Calculator& CalculatorFor(int64_t v) GBDA_REQUIRES(mutex_);
  /// Phi compute + memo; caller holds mutex_ and has validated (v, tau_hat).
  double PhiLocked(int64_t v, int64_t phi, int64_t tau_hat)
      GBDA_REQUIRES(mutex_);

  int64_t num_vertex_labels_;
  int64_t num_edge_labels_;
  int64_t tau_max_;
  GedPriorTable* ged_prior_;
  const GbdPrior* gbd_prior_;

  mutable Mutex mutex_;
  std::map<int64_t, std::unique_ptr<Lambda1Calculator>> calculators_
      GBDA_GUARDED_BY(mutex_);
  // Key: (v, phi, tau_hat) packed.
  std::map<std::tuple<int64_t, int64_t, int64_t>, double> phi_memo_
      GBDA_GUARDED_BY(mutex_);
  // (v, tau_hat) -> suffix-max table over phi in [0, min(v, 2*tau_hat)].
  std::map<std::pair<int64_t, int64_t>, std::vector<double>> suffix_max_memo_
      GBDA_GUARDED_BY(mutex_);
  size_t memo_hits_ GBDA_GUARDED_BY(mutex_) = 0;
  size_t memo_misses_ GBDA_GUARDED_BY(mutex_) = 0;
};

}  // namespace gbda
