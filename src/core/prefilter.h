/// \file prefilter.h
/// Optional candidate pruning in front of Algorithm 1's probabilistic test.
/// The Prefilter precomputes a cheap FilterProfile per database graph and
/// discards, in Step 2, any candidate whose admissible GED lower bound
/// (size and label-multiset differences) already exceeds tau_hat — before
/// branches or the posterior are touched. The bounds are sound, so the
/// Step 4 result set loses no true match; only provably-far graphs skip
/// the O(nd + tau_hat^3) evaluation.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/branch.h"
#include "graph/graph_database.h"

namespace gbda {

/// Cheap per-graph summary used by the layered prefilter: vertex/edge counts
/// and sorted label multisets. All four are admissible GED lower bounds when
/// differenced, so a candidate can be discarded without touching its branch
/// multiset whenever any of them already exceeds tau.
struct FilterProfile {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  std::vector<LabelId> vertex_labels;  // ascending
  std::vector<LabelId> edge_labels;    // ascending
};

FilterProfile BuildFilterProfile(const Graph& g);

/// Admissible GED lower bound from two filter profiles:
///   max(|ΔV|, |ΔE|, vertex-label multiset distance + edge-label multiset
///       distance),
/// each operation changing at most one unit of one quantity. O(n) per pair.
int64_t FilterLowerBound(const FilterProfile& a, const FilterProfile& b);

/// The layered prefilter of the multi-layer indexing direction discussed in
/// the paper's related work [35]: a size layer (O(1)) then a label layer
/// (O(n)) in front of the probabilistic test. Sound for any search with
/// threshold tau — it only removes candidates whose GED provably exceeds
/// tau — so recall is unaffected while the expensive stage sees fewer
/// candidates.
class Prefilter {
 public:
  /// Precomputes profiles for every database graph.
  explicit Prefilter(const GraphDatabase* db);

  /// Adopts precomputed per-graph profiles (position = graph id). Profiles
  /// are shared immutably, so the dynamic serving layer can assemble the
  /// dense prefilter of a snapshot from its per-graph profile store in
  /// O(live) pointer copies (docs/ARCHITECTURE.md, "Dynamic corpus").
  explicit Prefilter(
      std::vector<std::shared_ptr<const FilterProfile>> profiles);

  /// Ids of database graphs whose lower bound does not exceed tau.
  std::vector<size_t> Candidates(const Graph& query, int64_t tau) const;

  /// True when graph `id` survives the filter at threshold tau.
  bool Passes(const FilterProfile& query_profile, size_t id,
              int64_t tau) const;

  size_t size() const { return profiles_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<std::shared_ptr<const FilterProfile>> profiles_;
};

}  // namespace gbda
