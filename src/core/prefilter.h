/// \file prefilter.h
/// Optional candidate pruning in front of Algorithm 1's probabilistic test.
/// The Prefilter precomputes a cheap FilterProfile per database graph and
/// discards, in Step 2, any candidate whose admissible GED lower bound
/// (size and label-multiset differences) already exceeds tau_hat — before
/// branches or the posterior are touched. The bounds are sound, so the
/// Step 4 result set loses no true match; only provably-far graphs skip
/// the O(nd + tau_hat^3) evaluation.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/branch.h"
#include "graph/graph_database.h"

namespace gbda {

/// Cheap per-graph summary used by the layered prefilter: vertex/edge counts
/// and sorted label multisets. All four are admissible GED lower bounds when
/// differenced, so a candidate can be discarded without touching its branch
/// multiset whenever any of them already exceeds tau.
struct FilterProfile {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  std::vector<LabelId> vertex_labels;  // ascending
  std::vector<LabelId> edge_labels;    // ascending
  /// Ascending 64-bit fingerprints of the graph's branches (root label +
  /// ascending edge-label multiset, FNV-1a). Isomorphic branches
  /// (Definition 3) always hash equal, so the fingerprint multiset
  /// intersection can only OVERcount |B_G1 ∩ B_G2| (hash collisions merge
  /// distinct branch types) — an admissible common-branch upper bound, and
  /// through GBD = max(|V1|, |V2|) - |B_G1 ∩ B_G2| an admissible GBD lower
  /// bound, at a uint64 two-pointer merge instead of the full
  /// lexicographic branch merge. Feeds the top-k early-termination scan
  /// (CommonBranchUpperBound; docs/ARCHITECTURE.md, "Serving layer").
  std::vector<uint64_t> branch_keys;
};

/// 64-bit FNV-1a fingerprint of one branch: the root label followed by the
/// ascending edge-label multiset. Deterministic and content-only, so
/// isomorphic branches (Definition 3) always hash equal — the property
/// every admissible bound over branch_keys rests on. The raw-array overload
/// exists so src/ann can fingerprint branches straight out of a mapped
/// index's flat label pool without materializing Branch objects.
uint64_t BranchFingerprint(LabelId root, const LabelId* edge_labels,
                           size_t count);
uint64_t BranchFingerprint(LabelId root, const std::vector<LabelId>& edge_labels);

FilterProfile BuildFilterProfile(const Graph& g);

/// As above, but fingerprints the caller's already-extracted branch
/// multiset instead of re-running ExtractBranches — for callers that hold
/// both (PrepareScan extracts the query's branches anyway). `branches`
/// must be ExtractBranches(g).
FilterProfile BuildFilterProfile(const Graph& g,
                                 const BranchMultiset& branches);

/// Admissible GED lower bound from two filter profiles:
///   max(|ΔV|, |ΔE|, vertex-label multiset distance + edge-label multiset
///       distance),
/// each operation changing at most one unit of one quantity. O(n) per pair.
int64_t FilterLowerBound(const FilterProfile& a, const FilterProfile& b);

/// Upper bound on |B_Ga ∩ B_Gb|, the common-branch count of Definition 3:
/// the multiset intersection of the two profiles' branch fingerprints.
/// Isomorphic branches hash equal, so the fingerprint intersection can only
/// overcount the true branch intersection — admissible. Through
/// GBD = max(|V1|, |V2|) - |B_G1 ∩ B_G2| this is exactly a GBD lower bound:
///   GBD >= max(|V1|, |V2|) - CommonBranchUpperBound,
/// the cheap per-candidate bound the top-k early-termination scan feeds into
/// PosteriorEngine::PhiSuffixMax (docs/ARCHITECTURE.md, "Serving layer").
/// O(n) two-pointer uint64 merge — no branch or edge-label storage is
/// touched.
int64_t CommonBranchUpperBound(const FilterProfile& a, const FilterProfile& b);

/// Decision form of CommonBranchUpperBound: true iff the fingerprint
/// intersection is <= cap. Early-exits in both directions — as soon as the
/// intersection exceeds cap, or as soon as the remaining tails cannot lift
/// it above cap — so a typical call inspects far fewer elements than the
/// counting form. This is the top-k scan's hot tier-2 test: it folds the
/// whole "does the Phi upper bound rank this candidate strictly after the
/// current k-th best" question into one capped merge (gbda_search.cc).
bool CommonBranchUpperBoundAtMost(const FilterProfile& a,
                                  const FilterProfile& b, int64_t cap);

/// The layered prefilter of the multi-layer indexing direction discussed in
/// the paper's related work [35]: a size layer (O(1)) then a label layer
/// (O(n)) in front of the probabilistic test. Sound for any search with
/// threshold tau — it only removes candidates whose GED provably exceeds
/// tau — so recall is unaffected while the expensive stage sees fewer
/// candidates.
class Prefilter {
 public:
  /// Precomputes profiles for every database graph.
  explicit Prefilter(const GraphDatabase* db);

  /// Adopts precomputed per-graph profiles (position = graph id). Profiles
  /// are shared immutably, so the dynamic serving layer can assemble the
  /// dense prefilter of a snapshot from its per-graph profile store in
  /// O(live) pointer copies (docs/ARCHITECTURE.md, "Dynamic corpus").
  explicit Prefilter(
      std::vector<std::shared_ptr<const FilterProfile>> profiles);

  /// Ids of database graphs whose lower bound does not exceed tau.
  std::vector<size_t> Candidates(const Graph& query, int64_t tau) const;

  /// True when graph `id` survives the filter at threshold tau.
  bool Passes(const FilterProfile& query_profile, size_t id,
              int64_t tau) const;

  /// The precomputed profile of graph `id` (position = scan id), for bound
  /// computations beyond the pass/fail test — e.g. the top-k scan's GBD
  /// lower bound via CommonBranchUpperBound.
  const FilterProfile& profile(size_t id) const { return *profiles_[id]; }

  size_t size() const { return profiles_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<std::shared_ptr<const FilterProfile>> profiles_;
};

}  // namespace gbda
