#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/branch.h"
#include "math/gmm.h"

namespace gbda {

/// Options for fitting the GBD prior (Section V-B, Step 1.1-1.4).
struct GbdPriorOptions {
  /// Number of graph pairs sampled from the database (the paper's N; it uses
  /// 100,000 — the default here keeps the quick benches fast).
  size_t num_sample_pairs = 20000;
  GmmFitOptions gmm;
  /// Lower bound applied when the fitted density assigns (numerically) zero
  /// mass to a phi value, so the Bayes ratio Lambda3/Lambda2 stays finite.
  double probability_floor = 1e-12;
};

/// The prior distribution of GBD values (Lambda2): a Gaussian Mixture Model
/// fitted on GBDs of sampled database pairs, discretised with the continuity
/// correction of Eq. 14 and tabulated for phi in [0, max |V|].
class GbdPrior {
 public:
  /// Samples pairs, computes GBDs from the precomputed branch multisets, fits
  /// the GMM and tabulates probabilities. Uses all pairs when the database
  /// has fewer than `num_sample_pairs` of them.
  static Result<GbdPrior> Fit(const std::vector<BranchMultiset>& branches,
                              const GbdPriorOptions& options, Rng* rng);

  /// Pointer variant used by the incremental index (docs/ARCHITECTURE.md,
  /// "Dynamic corpus"): fits over the referenced multisets without copying
  /// them, so a staleness-triggered refit touches only the live corpus. The
  /// arithmetic is byte-for-byte the one of the value overload — the same
  /// ordered inputs and seed yield the same prior.
  static Result<GbdPrior> Fit(const std::vector<const BranchMultiset*>& branches,
                              const GbdPriorOptions& options, Rng* rng);

  /// Pr[GBD = phi], floored (see GbdPriorOptions::probability_floor).
  double Probability(int64_t phi) const;

  const GaussianMixture& gmm() const { return gmm_; }

  /// Histogram of the sampled GBDs (index = phi) — the blue bars of Fig. 5.
  const std::vector<size_t>& sample_histogram() const { return histogram_; }

  size_t pairs_sampled() const { return pairs_sampled_; }
  size_t table_size() const { return table_.size(); }
  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<GbdPrior> Deserialize(BinaryReader* reader);

 private:
  GaussianMixture gmm_;
  std::vector<double> table_;
  std::vector<size_t> histogram_;
  size_t pairs_sampled_ = 0;
  double floor_ = 1e-12;
};

}  // namespace gbda
