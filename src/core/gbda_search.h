/// \file gbda_search.h
/// The online stage of GBDA (Algorithm 1, Steps 2-4). Given a query and a
/// prebuilt GbdaIndex, GbdaSearch scans the database computing each
/// candidate's GBD from its precomputed branches (Step 2), evaluates the
/// posterior Phi = Pr[GED <= tau_hat | GBD] through the PosteriorEngine
/// (Step 3), and accepts candidates with Phi >= gamma (Step 4).
/// SearchOptions selects the published algorithm or the Section VII-D
/// variants (GBDA-V1 average-size, GBDA-V2 weighted VGBD of Eq. 26) and can
/// enable the sound layered Prefilter in front of the probabilistic test.
///
/// The scan is factored into PrepareScan (per-query state: branches, filter
/// profile, the V1 size estimate) and ScanRange (candidate evaluation over a
/// contiguous id range), so the serving layer (src/service/gbda_service.h)
/// can fan the same arithmetic out over shards and stay bit-identical to
/// the serial scan; see docs/ARCHITECTURE.md, "Serving layer".
///
/// Both halves consume the index through the IndexReader contract
/// (core/index_reader.h), so a decoded GbdaIndex and a mapped v3 artifact
/// (storage/index_view.h) serve queries through one code path with
/// bit-identical results.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/kernels.h"
#include "common/result.h"
#include "core/gbda_index.h"
#include "core/posterior.h"
#include "core/prefilter.h"
#include "graph/graph_database.h"

namespace gbda {

/// Which estimator drives the accept test (Section VII-D).
enum class GbdaVariant {
  /// Algorithm 1 as published: v = |V'1| of the actual pair, phi = GBD.
  kStandard,
  /// GBDA-V1: v is the average vertex count of `v1_sample_alpha` database
  /// graphs instead of the pair's extended size.
  kAverageSize,
  /// GBDA-V2: phi = round(VGBD) with the user weight w (Eq. 26).
  kWeightedGbd,
};

/// Online-stage parameters of Algorithm 1.
struct SearchOptions {
  int64_t tau_hat = 5;   // similarity threshold
  double gamma = 0.9;    // probability threshold
  GbdaVariant variant = GbdaVariant::kStandard;
  double vgbd_w = 0.5;          // V2 weight
  size_t v1_sample_alpha = 100;  // V1 sample size
  uint64_t seed = 99;            // V1 sampling seed
  /// Run the layered prefilter (size + label lower bounds) before the
  /// probabilistic test. Sound at threshold tau_hat: only graphs with
  /// provable GED > tau_hat are skipped, so no true match is lost while
  /// spurious accepts of provably-far graphs disappear.
  bool use_prefilter = false;
  /// Top-k queries only: skip a candidate's branch intersection and
  /// posterior evaluation when a sound Phi upper bound (a cheap GBD lower
  /// bound pushed through PosteriorEngine::PhiSuffixMax) is STRICTLY below
  /// the running k-th-best phi_score. Bit-identical to the exhaustive scan —
  /// matches, ordering, tie-breaks and the candidates/prefilter counters all
  /// stay unchanged; only SearchResult::pruned_by_bound (and wall time)
  /// varies. Set false to force the exhaustive reference scan, e.g. for
  /// equivalence testing (tests/topk_prune_equivalence_test.cc). Ignored by
  /// threshold queries, which must score every surviving candidate.
  bool topk_early_termination = true;
  /// Top-k queries only: navigate the proximity graph (src/ann) instead of
  /// scanning every candidate, then verify each visited candidate with the
  /// exact posterior arithmetic (ScanCandidateList). The result is a SUBSET
  /// of the exhaustive top-k carrying bit-exact scores — candidates the
  /// navigation never visits can be missed (the recall/latency trade-off,
  /// gated by bench/bench_recall.cc), but a returned (phi, gbd) is never
  /// fabricated. Ignored by threshold queries, which are defined over the
  /// whole corpus, and by the serial GbdaSearch, which stays the exhaustive
  /// ground-truth reference — the serving layers (GbdaService,
  /// DynamicGbdaService) honor it. See docs/ARCHITECTURE.md, "Approximate
  /// candidate navigation".
  bool approximate = false;
  /// Beam width of the approximate navigation (the priority-queue window of
  /// the greedy search). Larger windows visit more candidates: recall and
  /// cost both rise, and a window >= corpus size visits everything, making
  /// the approximate ranking bit-identical to the exhaustive one. Clamped
  /// up to k at query time so the window can always hold a full result.
  size_t search_window_size = 64;
  /// Which scan-kernel implementation (common/kernels.h) evaluates the
  /// batched tier-1/tier-2 cuts and fingerprint intersections: kAuto picks
  /// AVX2 when the CPU supports it, the force values pin one path (the
  /// bench bit-identity gate sweeps both). Results are bit-identical either
  /// way — the kernel contract, pinned by tests/kernels_test.cc. The
  /// GBDA_FORCE_SCALAR_KERNELS environment override outranks this knob
  /// (CI's scalar-forced leg). Process-local: NOT carried by the wire
  /// protocol — a server scans with its own dispatch setting.
  KernelDispatch kernel_dispatch = KernelDispatch::kAuto;
};

/// One accepted graph.
struct SearchMatch {
  size_t graph_id = 0;
  double phi_score = 0.0;  // Pr[GED <= tau_hat | GBD]
  int64_t gbd = 0;
};

/// The total ranking order used by every top-k path (serial and sharded):
/// higher phi_score first, ties by smaller GBD, then smaller id. Total, so
/// any k-truncation is unique and shard merges reproduce the serial order.
bool SearchMatchRankBefore(const SearchMatch& a, const SearchMatch& b);

/// Sorts the best k matches to the front under SearchMatchRankBefore and
/// truncates to k (std::partial_sort; the whole vector is sorted when
/// k >= size, and k == 0 truncates to nothing).
void SortTopK(std::vector<SearchMatch>* matches, size_t k);

/// `top_k` sentinel for the scan pipeline: keep every match (threshold
/// mode, no ranking truncation). Distinct from k == 0, which is a valid
/// top-k request for an EMPTY ranking: QueryTopK(k = 0) is defined to
/// return an empty result (not an error) and is short-circuited at the API
/// boundary — no scan runs, so it cannot ride the SortTopK resize path or
/// the early-termination heap. Oversized k values are clamped below the
/// sentinel by the service layers, so SIZE_MAX never aliases it.
inline constexpr size_t kScanAllMatches = static_cast<size_t>(-1);

/// Shared early-termination state of one top-k scan: one instance per
/// query, shared by every shard worker scanning that query
/// (service/parallel_scan.cc), or used alone by the serial scan. Workers
/// publish "k evaluated matches of this query all have phi_score >= t"
/// witnesses — the root of a full local heap — and read the best witness
/// published by ANY worker, so one shard's strong hits prune the other
/// shards' tails. Relaxed atomics suffice: the published double itself
/// carries the guarantee (it is monotonically raised via CAS-max and never
/// orders any other memory), and a stale read only weakens pruning, never
/// correctness. Pruning compares a sound per-candidate Phi UPPER bound
/// against the threshold and skips only on STRICTLY-worse, so candidates
/// tying at the bound are always evaluated and the surviving set always
/// contains the exact top-k under SearchMatchRankBefore.
class ScanBounds {
 public:
  explicit ScanBounds(size_t k) : k_(k) {}

  size_t k() const { return k_; }

  /// The best published k-th-best phi_score; -infinity until some worker
  /// has seen k matches.
  double threshold() const {
    return shared_phi_.load(std::memory_order_relaxed);
  }

  /// Raises the shared threshold to `kth_best_phi` if it improves it.
  void Publish(double kth_best_phi) {
    double current = shared_phi_.load(std::memory_order_relaxed);
    while (kth_best_phi > current &&
           !shared_phi_.compare_exchange_weak(current, kth_best_phi,
                                              std::memory_order_relaxed)) {
    }
  }

 private:
  size_t k_;
  std::atomic<double> shared_phi_{
      -std::numeric_limits<double>::infinity()};
};

/// Outcome of one query.
struct SearchResult {
  std::vector<SearchMatch> matches;
  double seconds = 0.0;
  /// Candidates admitted past the prefilter. Deterministic — top-k early
  /// termination does NOT change this counter (pruned candidates still
  /// count), so it stays bit-identical across exhaustive, pruned, serial
  /// and sharded scans.
  size_t candidates_evaluated = 0;
  /// Candidates removed by the prefilter (0 when it is disabled).
  size_t prefiltered_out = 0;
  /// Candidates whose branch intersection + posterior evaluation the top-k
  /// early-termination bound skipped (subset of candidates_evaluated; 0 for
  /// threshold queries and exhaustive scans). Timing-dependent under
  /// sharding — the shared threshold tightens in worker order — so it is
  /// excluded from the bit-identity contract.
  size_t pruned_by_bound = 0;
  /// Approximate mode only: candidates the proximity-graph navigation
  /// visited and handed to verification (0 for exhaustive scans). Like
  /// pruned_by_bound it is a cost counter, excluded from the determinism
  /// comparisons the equivalence gates run.
  size_t candidates_visited = 0;
  /// Candidates whose branch intersection + posterior were actually
  /// computed (i.e. not skipped by the early-termination bound). Equals
  /// candidates_evaluated - pruned_by_bound on every path; tracked
  /// explicitly so approximate-mode verification cost is visible per query.
  /// Timing-dependent under sharding, excluded from determinism gates.
  size_t verified_count = 0;
};

/// A dense read-only view of the corpus a scan runs over: either a whole
/// GraphDatabase (the frozen offline world) or a snapshot's vector of live
/// graph pointers (the dynamic world, where dense position i maps to the
/// i-th live graph; see src/service/dynamic_service.h). Only size() and
/// graph() are ever needed by the scan, so both worlds share one code path
/// and stay bit-identical. The viewed storage must outlive the CorpusRef.
class CorpusRef {
 public:
  CorpusRef(const GraphDatabase* db) : db_(db) {}
  CorpusRef(const std::vector<const Graph*>* graphs) : graphs_(graphs) {}

  size_t size() const { return db_ ? db_->size() : graphs_->size(); }
  const Graph& graph(size_t i) const {
    return db_ ? db_->graph(i) : *(*graphs_)[i];
  }

 private:
  const GraphDatabase* db_ = nullptr;
  const std::vector<const Graph*>* graphs_ = nullptr;
};

/// Per-query state shared by every candidate evaluation of one query:
/// the query's branch multiset (plus its flattened form, see below), its
/// filter profile (when the prefilter is on) and the GBDA-V1
/// database-average size estimate. Computed once by PrepareScan, then
/// read-only — safe to share across shard workers.
struct ScanContext {
  /// Move-only: query_ref points into this context's own buffers, so an
  /// implicit copy would silently alias the source's heap storage. Moves
  /// are safe — the vectors keep their heap buffers, so the ref stays
  /// valid across moves (PrepareScan's return path relies on that).
  ScanContext() = default;
  ScanContext(ScanContext&&) = default;
  ScanContext& operator=(ScanContext&&) = default;
  ScanContext(const ScanContext&) = delete;
  ScanContext& operator=(const ScanContext&) = delete;

  SearchOptions options;
  bool apply_gamma = true;
  BranchMultiset query_branches;
  /// query_branches flattened into contiguous arrays (the layout a mapped
  /// candidate already has), so the merge loop walks flat root arrays on
  /// both sides for every one of the O(corpus * |q|) comparisons. Built
  /// once per query here rather than per (query, shard) task.
  std::vector<uint32_t> query_roots;
  std::vector<uint64_t> query_offsets;  // query_branches.size() + 1 entries
  std::vector<LabelId> query_pool;
  /// The flat view over the three arrays above (valid across moves, see
  /// the class comment).
  BranchSetRef query_ref;

  /// The query's branch fingerprints, sorted ascending — the query side of
  /// every kernel call: the tier-2 capped intersection cut, and (when
  /// fp_exact below holds) the exact fingerprint-scoring path. Always
  /// built; same content as query_profile.branch_keys when that profile
  /// exists.
  std::vector<uint64_t> query_fps;
  /// True when fingerprint intersections against THIS index are provably
  /// exact for this query: the index's columns carry the corpus-injectivity
  /// directory (CandidateColumns::exactness_certified) AND the query-side
  /// audit in PrepareScan found no collision among the query's own branches
  /// or against the directory's representatives. The scan then scores
  /// non-weighted variants as phi = max_size - |query_fps ∩ candidate fps|
  /// — equal to GbdFromBranches by injectivity, at a fraction of the cost.
  /// Never set for GbdaVariant::kWeightedGbd (Vgbd needs the branch
  /// multisets themselves).
  bool fp_exact = false;

  /// Built when the prefilter is on, and for every ranking scan
  /// (apply_gamma == false): the top-k early-termination bound reads the
  /// query's vertex-label multiset through it when candidate profiles are
  /// available.
  FilterProfile query_profile;
  int64_t v1_size = 0;  // only meaningful for GbdaVariant::kAverageSize
};

/// Validates options against the index and computes the per-query state.
/// Deterministic in options.seed (the V1 sample). Fails when
/// options.tau_hat exceeds the index's tau_max, and when the corpus and
/// index disagree on the graph count (a stale index artifact would
/// otherwise drive out-of-bounds branch lookups in ScanRange).
Result<ScanContext> PrepareScan(const Graph& query,
                                const SearchOptions& options, bool apply_gamma,
                                const CorpusRef& corpus,
                                const IndexReader& index);

/// Evaluates candidates with ids in [begin, end), appending accepted
/// matches to result->matches (in ascending id order) and accumulating
/// candidates_evaluated / prefiltered_out, so per-shard results sum to the
/// serial scan's counters. `prefilter` may be null when
/// ctx.options.use_prefilter is false; when non-null its profiles also
/// sharpen the early-termination bound below, independent of
/// use_prefilter (the dynamic serving path always has them at hand).
/// Thread-compatible: concurrent calls are safe when each uses its own
/// `posterior` and `result` (the index, prefilter and ctx are only read;
/// `bounds` is internally synchronized).
///
/// `bounds` non-null enables top-k early termination on a ranking scan
/// (ctx.apply_gamma == false, bounds->k() >= 1; any other configuration
/// scans exhaustively): the call keeps a bounded heap of the k best
/// (phi_score, gbd) pairs it has appended under SearchMatchRankBefore, and
/// skips a candidate — counting it in pruned_by_bound instead of scoring
/// it — when the candidate provably ranks strictly after that witness (or
/// after the cross-shard phi witness in bounds->threshold()). The proof
/// pushes a GBD lower bound — from multiset sizes (tier 1, O(1)), then
/// from profile branch-fingerprint intersections when `prefilter` is
/// non-null (tier 2, capped early-exit merge) — through
/// PosteriorEngine::PhiSuffixMax; a tie in the bounded phi falls through
/// to the gbd tie-break, so pruning stays live even when the k-th best
/// phi_score is exactly 0. Every skip is provably outside the query's
/// global top-k, so downstream SortTopK truncation reproduces the
/// exhaustive ranking bit-identically (see ScanBounds).
Status ScanRange(const ScanContext& ctx, const IndexReader& index,
                 const Prefilter* prefilter, size_t begin, size_t end,
                 PosteriorEngine* posterior, SearchResult* result,
                 ScanBounds* bounds = nullptr);

/// Evaluates exactly the candidates listed in `ids` (any order; ids must be
/// distinct — a repeated id would append its match twice) with the SAME
/// arithmetic as ScanRange — prefilter
/// admission, branch-multiset GBD, posterior, variant handling — so a match
/// this call appends is bit-identical to the one the exhaustive scan would
/// append for that id. This is the verification half of approximate mode
/// (src/ann navigates, this call scores); counters accumulate like
/// ScanRange's, plus verified_count for candidates actually scored.
///
/// `bounds` non-null arms the same PR-5 admissible early termination as
/// ScanRange (ranking scans only): a candidate provably ranking strictly
/// after the k-th-best witness is counted in pruned_by_bound instead of
/// scored. Skips are sound within the listed set — the surviving matches
/// always contain the exact top-k OF THE LISTED CANDIDATES — so
/// approximate-mode results stay a subset of the exhaustive ranking with
/// exact scores. Thread-compatible under the same rules as ScanRange.
/// Every id must be < index.num_graphs() (checked; out-of-range fails).
Status ScanCandidateList(const ScanContext& ctx, const IndexReader& index,
                         const Prefilter* prefilter,
                         const std::vector<uint32_t>& ids,
                         PosteriorEngine* posterior, SearchResult* result,
                         ScanBounds* bounds = nullptr);

/// The online stage of GBDA (Algorithm 1, Steps 2-4): per database graph,
/// compute GBD from precomputed branches, evaluate the posterior
/// Pr[GED <= tau_hat | GBD] and keep graphs passing the probability
/// threshold. O(nd + tau_hat^3) per graph as analysed in Theorem 3.
class GbdaSearch {
 public:
  /// Checked construction: fails when `index` does not agree with `db`
  /// (graph counts and per-graph branch sizes), e.g. a stale LoadFromFile
  /// artifact. Prefer this over the raw constructor whenever the index
  /// provenance is not statically known. Accepts any IndexReader — a
  /// decoded GbdaIndex or a mapped GbdaIndexView.
  static Result<std::unique_ptr<GbdaSearch>> Create(const GraphDatabase* db,
                                                    const IndexReader* index);

  /// `db` and `index` must outlive the search object. The index must have
  /// been built over exactly this database (Create enforces this; the raw
  /// constructor defers the check to query time, where PrepareScan rejects
  /// a size mismatch before any out-of-bounds access can happen).
  GbdaSearch(const GraphDatabase* db, const IndexReader* index);

  /// Runs one similarity query. Fails when options.tau_hat exceeds the
  /// index's tau_max.
  Result<SearchResult> Query(const Graph& query, const SearchOptions& options);

  /// Top-k variant: the k database graphs with the highest posterior
  /// Pr[GED <= tau_hat | GBD], ignoring the gamma threshold (ties broken by
  /// smaller GBD, then id). Useful when the caller wants a ranking rather
  /// than a yes/no set. k == 0 returns an empty result without scanning
  /// (see kScanAllMatches for the sentinel/zero distinction). Runs the
  /// early-terminated scan unless options.topk_early_termination is off —
  /// bit-identical either way.
  Result<SearchResult> QueryTopK(const Graph& query, size_t k,
                                 const SearchOptions& options);

  /// Posterior engine statistics (memoisation effectiveness), for benches.
  const PosteriorEngine& posterior() const { return posterior_; }

 private:
  /// Shared scan: evaluates Phi for every (or every surviving) candidate.
  /// `top_k` != kScanAllMatches arms early termination on ranking scans
  /// (when options.topk_early_termination is set); the result is still the
  /// full untruncated match list — QueryTopK sorts and truncates it.
  Result<SearchResult> Scan(const Graph& query, const SearchOptions& options,
                            bool apply_gamma,
                            size_t top_k = kScanAllMatches);

  const GraphDatabase* db_;
  const IndexReader* index_;
  PosteriorEngine posterior_;
  /// Built on the first prefiltered query: profile extraction is O(corpus)
  /// and cold-start sensitive (bench/bench_coldstart.cc), so queries that
  /// never enable the prefilter never pay for it. call_once keeps
  /// concurrent Query calls as safe as they were with the eager member
  /// (the engine is internally synchronized already).
  std::once_flag prefilter_once_;
  std::unique_ptr<Prefilter> prefilter_;
};

}  // namespace gbda
