/// \file gbda_search.h
/// The online stage of GBDA (Algorithm 1, Steps 2-4). Given a query and a
/// prebuilt GbdaIndex, GbdaSearch scans the database computing each
/// candidate's GBD from its precomputed branches (Step 2), evaluates the
/// posterior Phi = Pr[GED <= tau_hat | GBD] through the PosteriorEngine
/// (Step 3), and accepts candidates with Phi >= gamma (Step 4).
/// SearchOptions selects the published algorithm or the Section VII-D
/// variants (GBDA-V1 average-size, GBDA-V2 weighted VGBD of Eq. 26) and can
/// enable the sound layered Prefilter in front of the probabilistic test.
///
/// The scan is factored into PrepareScan (per-query state: branches, filter
/// profile, the V1 size estimate) and ScanRange (candidate evaluation over a
/// contiguous id range), so the serving layer (src/service/gbda_service.h)
/// can fan the same arithmetic out over shards and stay bit-identical to
/// the serial scan; see docs/ARCHITECTURE.md, "Serving layer".
///
/// Both halves consume the index through the IndexReader contract
/// (core/index_reader.h), so a decoded GbdaIndex and a mapped v3 artifact
/// (storage/index_view.h) serve queries through one code path with
/// bit-identical results.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "core/gbda_index.h"
#include "core/posterior.h"
#include "core/prefilter.h"
#include "graph/graph_database.h"

namespace gbda {

/// Which estimator drives the accept test (Section VII-D).
enum class GbdaVariant {
  /// Algorithm 1 as published: v = |V'1| of the actual pair, phi = GBD.
  kStandard,
  /// GBDA-V1: v is the average vertex count of `v1_sample_alpha` database
  /// graphs instead of the pair's extended size.
  kAverageSize,
  /// GBDA-V2: phi = round(VGBD) with the user weight w (Eq. 26).
  kWeightedGbd,
};

/// Online-stage parameters of Algorithm 1.
struct SearchOptions {
  int64_t tau_hat = 5;   // similarity threshold
  double gamma = 0.9;    // probability threshold
  GbdaVariant variant = GbdaVariant::kStandard;
  double vgbd_w = 0.5;          // V2 weight
  size_t v1_sample_alpha = 100;  // V1 sample size
  uint64_t seed = 99;            // V1 sampling seed
  /// Run the layered prefilter (size + label lower bounds) before the
  /// probabilistic test. Sound at threshold tau_hat: only graphs with
  /// provable GED > tau_hat are skipped, so no true match is lost while
  /// spurious accepts of provably-far graphs disappear.
  bool use_prefilter = false;
};

/// One accepted graph.
struct SearchMatch {
  size_t graph_id = 0;
  double phi_score = 0.0;  // Pr[GED <= tau_hat | GBD]
  int64_t gbd = 0;
};

/// The total ranking order used by every top-k path (serial and sharded):
/// higher phi_score first, ties by smaller GBD, then smaller id. Total, so
/// any k-truncation is unique and shard merges reproduce the serial order.
bool SearchMatchRankBefore(const SearchMatch& a, const SearchMatch& b);

/// Sorts the best k matches to the front under SearchMatchRankBefore and
/// truncates to k (std::partial_sort; the whole vector is sorted when
/// k >= size).
void SortTopK(std::vector<SearchMatch>* matches, size_t k);

/// Outcome of one query.
struct SearchResult {
  std::vector<SearchMatch> matches;
  double seconds = 0.0;
  size_t candidates_evaluated = 0;
  /// Candidates removed by the prefilter (0 when it is disabled).
  size_t prefiltered_out = 0;
};

/// A dense read-only view of the corpus a scan runs over: either a whole
/// GraphDatabase (the frozen offline world) or a snapshot's vector of live
/// graph pointers (the dynamic world, where dense position i maps to the
/// i-th live graph; see src/service/dynamic_service.h). Only size() and
/// graph() are ever needed by the scan, so both worlds share one code path
/// and stay bit-identical. The viewed storage must outlive the CorpusRef.
class CorpusRef {
 public:
  CorpusRef(const GraphDatabase* db) : db_(db) {}
  CorpusRef(const std::vector<const Graph*>* graphs) : graphs_(graphs) {}

  size_t size() const { return db_ ? db_->size() : graphs_->size(); }
  const Graph& graph(size_t i) const {
    return db_ ? db_->graph(i) : *(*graphs_)[i];
  }

 private:
  const GraphDatabase* db_ = nullptr;
  const std::vector<const Graph*>* graphs_ = nullptr;
};

/// Per-query state shared by every candidate evaluation of one query:
/// the query's branch multiset (plus its flattened form, see below), its
/// filter profile (when the prefilter is on) and the GBDA-V1
/// database-average size estimate. Computed once by PrepareScan, then
/// read-only — safe to share across shard workers.
struct ScanContext {
  /// Move-only: query_ref points into this context's own buffers, so an
  /// implicit copy would silently alias the source's heap storage. Moves
  /// are safe — the vectors keep their heap buffers, so the ref stays
  /// valid across moves (PrepareScan's return path relies on that).
  ScanContext() = default;
  ScanContext(ScanContext&&) = default;
  ScanContext& operator=(ScanContext&&) = default;
  ScanContext(const ScanContext&) = delete;
  ScanContext& operator=(const ScanContext&) = delete;

  SearchOptions options;
  bool apply_gamma = true;
  BranchMultiset query_branches;
  /// query_branches flattened into contiguous arrays (the layout a mapped
  /// candidate already has), so the merge loop walks flat root arrays on
  /// both sides for every one of the O(corpus * |q|) comparisons. Built
  /// once per query here rather than per (query, shard) task.
  std::vector<uint32_t> query_roots;
  std::vector<uint64_t> query_offsets;  // query_branches.size() + 1 entries
  std::vector<LabelId> query_pool;
  /// The flat view over the three arrays above (valid across moves, see
  /// the class comment).
  BranchSetRef query_ref;

  FilterProfile query_profile;
  int64_t v1_size = 0;  // only meaningful for GbdaVariant::kAverageSize
};

/// Validates options against the index and computes the per-query state.
/// Deterministic in options.seed (the V1 sample). Fails when
/// options.tau_hat exceeds the index's tau_max, and when the corpus and
/// index disagree on the graph count (a stale index artifact would
/// otherwise drive out-of-bounds branch lookups in ScanRange).
Result<ScanContext> PrepareScan(const Graph& query,
                                const SearchOptions& options, bool apply_gamma,
                                const CorpusRef& corpus,
                                const IndexReader& index);

/// Evaluates candidates with ids in [begin, end), appending accepted
/// matches to result->matches (in ascending id order) and accumulating
/// candidates_evaluated / prefiltered_out, so per-shard results sum to the
/// serial scan's counters. `prefilter` may be null when
/// ctx.options.use_prefilter is false. Thread-compatible: concurrent calls
/// are safe when each uses its own `posterior` and `result` (the index,
/// prefilter and ctx are only read).
Status ScanRange(const ScanContext& ctx, const IndexReader& index,
                 const Prefilter* prefilter, size_t begin, size_t end,
                 PosteriorEngine* posterior, SearchResult* result);

/// The online stage of GBDA (Algorithm 1, Steps 2-4): per database graph,
/// compute GBD from precomputed branches, evaluate the posterior
/// Pr[GED <= tau_hat | GBD] and keep graphs passing the probability
/// threshold. O(nd + tau_hat^3) per graph as analysed in Theorem 3.
class GbdaSearch {
 public:
  /// Checked construction: fails when `index` does not agree with `db`
  /// (graph counts and per-graph branch sizes), e.g. a stale LoadFromFile
  /// artifact. Prefer this over the raw constructor whenever the index
  /// provenance is not statically known. Accepts any IndexReader — a
  /// decoded GbdaIndex or a mapped GbdaIndexView.
  static Result<std::unique_ptr<GbdaSearch>> Create(const GraphDatabase* db,
                                                    const IndexReader* index);

  /// `db` and `index` must outlive the search object. The index must have
  /// been built over exactly this database (Create enforces this; the raw
  /// constructor defers the check to query time, where PrepareScan rejects
  /// a size mismatch before any out-of-bounds access can happen).
  GbdaSearch(const GraphDatabase* db, const IndexReader* index);

  /// Runs one similarity query. Fails when options.tau_hat exceeds the
  /// index's tau_max.
  Result<SearchResult> Query(const Graph& query, const SearchOptions& options);

  /// Top-k variant: the k database graphs with the highest posterior
  /// Pr[GED <= tau_hat | GBD], ignoring the gamma threshold (ties broken by
  /// smaller GBD, then id). Useful when the caller wants a ranking rather
  /// than a yes/no set.
  Result<SearchResult> QueryTopK(const Graph& query, size_t k,
                                 const SearchOptions& options);

  /// Posterior engine statistics (memoisation effectiveness), for benches.
  const PosteriorEngine& posterior() const { return posterior_; }

 private:
  /// Shared scan: evaluates Phi for every (or every surviving) candidate.
  Result<SearchResult> Scan(const Graph& query, const SearchOptions& options,
                            bool apply_gamma);

  const GraphDatabase* db_;
  const IndexReader* index_;
  PosteriorEngine posterior_;
  /// Built on the first prefiltered query: profile extraction is O(corpus)
  /// and cold-start sensitive (bench/bench_coldstart.cc), so queries that
  /// never enable the prefilter never pay for it. call_once keeps
  /// concurrent Query calls as safe as they were with the eager member
  /// (the engine is internally synchronized already).
  std::once_flag prefilter_once_;
  std::unique_ptr<Prefilter> prefilter_;
};

}  // namespace gbda
