#include "core/candidate_columns.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/prefilter.h"

namespace gbda {

OwnedCandidateColumns BuildCandidateColumns(const IndexReader& index) {
  OwnedCandidateColumns cols;
  const size_t num_graphs = index.num_graphs();
  cols.sizes.resize(num_graphs);
  cols.fp_offsets.assign(num_graphs + 1, 0);
  uint64_t total_branches = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    const size_t size = index.branch_set(g).size();
    cols.sizes[g] = static_cast<uint32_t>(size);
    total_branches += size;
    cols.fp_offsets[g + 1] = total_branches;
  }
  cols.fp_keys.reserve(static_cast<size_t>(total_branches));

  // Collision audit: fingerprint -> first branch observed with it (packed
  // graph_id << 32 | branch_index). The directory certifies exactness only
  // when every later branch with a seen fingerprint has the SAME content as
  // the first — i.e. fingerprint -> content is injective corpus-wide.
  std::unordered_map<uint64_t, uint64_t> first_seen;
  first_seen.reserve(static_cast<size_t>(total_branches));
  bool certified = num_graphs <= 0xFFFFFFFFull;
  std::vector<uint64_t> scratch;
  for (size_t g = 0; g < num_graphs; ++g) {
    const BranchSetRef set = index.branch_set(g);
    scratch.clear();
    scratch.reserve(set.size());
    for (size_t b = 0; b < set.size(); ++b) {
      const Span<const LabelId> labels = set.edge_labels(b);
      const uint64_t fp =
          BranchFingerprint(set.root(b), labels.data(), labels.size());
      scratch.push_back(fp);
      const uint64_t packed = (static_cast<uint64_t>(g) << 32) |
                              static_cast<uint64_t>(b & 0xFFFFFFFFull);
      const auto inserted = first_seen.emplace(fp, packed);
      if (!inserted.second && certified) {
        const uint64_t rep = inserted.first->second;
        const BranchSetRef rep_set =
            index.branch_set(static_cast<size_t>(rep >> 32));
        if (!SameBranchContent(set, b, rep_set,
                               static_cast<size_t>(rep & 0xFFFFFFFFull))) {
          certified = false;
        }
      }
    }
    // The column stores each graph's keys ascending — the layout every
    // fingerprint merge (tier-2 and the exact path) consumes directly.
    std::sort(scratch.begin(), scratch.end());
    cols.fp_keys.insert(cols.fp_keys.end(), scratch.begin(), scratch.end());
  }

  cols.certified = certified;
  if (certified) {
    std::vector<std::pair<uint64_t, uint64_t>> directory(first_seen.begin(),
                                                         first_seen.end());
    // Representatives are first-in-scan-order, so sorting by fingerprint
    // makes the directory a deterministic function of the branch data.
    std::sort(directory.begin(), directory.end());
    cols.fp_unique.reserve(directory.size());
    cols.fp_rep.reserve(directory.size());
    for (const auto& entry : directory) {
      cols.fp_unique.push_back(entry.first);
      cols.fp_rep.push_back(entry.second);
    }
  }
  return cols;
}

}  // namespace gbda
