/// \file candidate_columns.h
/// The owned form of the SoA candidate columns (core/index_reader.h) and
/// the one materialisation routine every backing shares: the v3 arena
/// writer persists exactly what BuildCandidateColumns computes
/// (storage/index_arena.cc), and a decoded GbdaIndex materialises the same
/// columns on the fly so dynamic snapshots and v2-loaded indexes feed the
/// batched kernels too. One deterministic function of the branch data, so
/// an artifact's columns and an on-the-fly build are bit-identical — the
/// property the cross-backing equivalence suites rest on.
/// See docs/ARCHITECTURE.md, "Scan kernels & column layout".

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/index_reader.h"

namespace gbda {

/// Content equality of two branches given as (root, edge-label span) — the
/// Branch::operator== predicate over flat storage. Used by the corpus-side
/// collision audit here and by the query-side audit in PrepareScan.
inline bool SameBranchContent(const BranchSetRef& a, size_t ai,
                              const BranchSetRef& b, size_t bi) {
  if (a.root(ai) != b.root(bi)) return false;
  const Span<const LabelId> la = a.edge_labels(ai);
  const Span<const LabelId> lb = b.edge_labels(bi);
  return la.size() == lb.size() && std::equal(la.begin(), la.end(), lb.begin());
}

/// Heap-owning candidate columns plus the accessor that views them through
/// the non-owning CandidateColumns contract.
struct OwnedCandidateColumns {
  std::vector<uint32_t> sizes;       // [num_graphs]
  std::vector<uint64_t> fp_offsets;  // [num_graphs + 1], == branch_start
  std::vector<uint64_t> fp_keys;     // per-graph ascending, packed
  /// Collision directory (empty vectors when `certified` is false): the
  /// ascending distinct fingerprints and, parallel to them, one
  /// representative branch each, packed (graph_id << 32 | branch_index).
  std::vector<uint64_t> fp_unique;
  std::vector<uint64_t> fp_rep;
  /// True when the fingerprint -> branch-content mapping is injective over
  /// the whole corpus (see CandidateColumns::exactness_certified).
  bool certified = false;

  CandidateColumns View() const {
    CandidateColumns c;
    c.sizes = sizes.data();
    c.fp_offsets = fp_offsets.data();
    c.fp_keys = fp_keys.data();
    if (certified) {
      c.fp_unique = fp_unique.data();
      c.fp_rep = fp_rep.data();
      c.num_distinct = fp_unique.size();
    }
    return c;
  }
};

/// Materialises the columns from any IndexReader's branch data: per-graph
/// branch counts, per-graph sorted FNV branch fingerprints, and — when the
/// corpus-wide fingerprint -> content audit finds no collision — the
/// exactness directory. O(total branches) plus one hash probe per branch;
/// deterministic in the branch data alone. Tombstoned slots contribute
/// empty columns (their branch_set() is empty), matching how the scan
/// already treats them.
OwnedCandidateColumns BuildCandidateColumns(const IndexReader& index);

}  // namespace gbda
