#include "core/lambda1.h"

#include <algorithm>

namespace gbda {

Lambda1Calculator::Lambda1Calculator(const ModelParams& params, int64_t tau_max)
    : params_(params),
      tau_max_(tau_max),
      m_cap_(std::min<int64_t>(2 * tau_max, params.v)),
      omega2_(params.v, tau_max) {
  omega1_.resize(static_cast<size_t>(tau_max + 1));
  for (int64_t tau = 0; tau <= tau_max; ++tau) {
    auto& row = omega1_[static_cast<size_t>(tau)];
    row.resize(static_cast<size_t>(tau + 1), 0.0);
    for (int64_t x = 0; x <= tau; ++x) {
      row[static_cast<size_t>(x)] = Omega1(x, tau, params_);
    }
  }
}

std::vector<std::vector<double>> Lambda1Calculator::Inner2(int64_t phi) const {
  const int64_t x_cap = std::min<int64_t>(tau_max_, params_.v);
  std::vector<std::vector<double>> inner(
      static_cast<size_t>(x_cap + 1),
      std::vector<double>(static_cast<size_t>(m_cap_ + 1), 0.0));
  for (int64_t x = 0; x <= x_cap; ++x) {
    for (int64_t m = 0; m <= m_cap_; ++m) {
      // R = x + m - t with overlap t in the hypergeometric support.
      const int64_t r_lo = std::max(x, m);
      const int64_t r_hi = std::min(x + m, params_.v);
      double acc = 0.0;
      for (int64_t r = r_lo; r <= r_hi; ++r) {
        const double o4 = Omega4(x, r, m, params_);
        if (o4 <= 0.0) continue;
        const double o3 = Omega3(r, phi, params_);
        if (o3 <= 0.0) continue;
        acc += o3 * o4;
      }
      inner[static_cast<size_t>(x)][static_cast<size_t>(m)] = acc;
    }
  }
  return inner;
}

std::vector<double> Lambda1Calculator::Column(int64_t phi) const {
  std::vector<double> column(static_cast<size_t>(tau_max_ + 1), 0.0);
  if (phi < 0) return column;
  const std::vector<std::vector<double>> inner = Inner2(phi);
  const int64_t x_cap = std::min<int64_t>(tau_max_, params_.v);
  for (int64_t tau = 0; tau <= tau_max_; ++tau) {
    double total = 0.0;
    const auto& o1row = omega1_[static_cast<size_t>(tau)];
    for (int64_t x = 0; x <= std::min(tau, x_cap); ++x) {
      const double o1 = o1row[static_cast<size_t>(x)];
      if (o1 <= 0.0) continue;
      const int64_t y = tau - x;
      const int64_t m_hi = std::min<int64_t>(2 * y, m_cap_);
      double inner_sum = 0.0;
      for (int64_t m = 0; m <= m_hi; ++m) {
        const double o2 = omega2_.At(m, y);
        if (o2 <= 0.0) continue;
        inner_sum += o2 * inner[static_cast<size_t>(x)][static_cast<size_t>(m)];
      }
      total += o1 * inner_sum;
    }
    column[static_cast<size_t>(tau)] = total;
  }
  return column;
}

std::vector<std::vector<double>> Lambda1Calculator::Matrix() const {
  const int64_t phi_max = 2 * tau_max_;
  std::vector<std::vector<double>> matrix(
      static_cast<size_t>(tau_max_ + 1),
      std::vector<double>(static_cast<size_t>(phi_max + 1), 0.0));
  for (int64_t phi = 0; phi <= phi_max; ++phi) {
    const std::vector<double> col = Column(phi);
    for (int64_t tau = 0; tau <= tau_max_; ++tau) {
      matrix[static_cast<size_t>(tau)][static_cast<size_t>(phi)] =
          col[static_cast<size_t>(tau)];
    }
  }
  return matrix;
}

}  // namespace gbda
