#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/serialize.h"
#include "common/thread_annotations.h"

namespace gbda {

/// Largest tau_max any persisted artifact may claim. Shared by the index
/// and GED-prior decoders — the index loader cross-checks the two headers
/// for equality, so the bounds must never diverge. The bound reflects what
/// a loaded table can afford to compute, not just integer plausibility:
/// BuildRow allocates an O(tau^2) Lambda1 matrix and spends O(tau^3+) time,
/// so an unbounded hostile tau_max would turn the first query into an OOM
/// or an effective hang (at 1024 the matrix is ~17 MB; the paper uses
/// tau <= 30).
inline constexpr int64_t kMaxPlausibleTau = 1024;

/// Jeffreys prior over GED values (Lambda3, Section V-C / Eq. 16).
///
/// For each extended-graph size v the table stores
///   Pr[GED = tau | v]  proportional to  sqrt( sum_phi Lambda1(tau,phi) * Z(tau,phi)^2 ),
/// where Z = d/dtau ln Lambda1 — the square root of the Fisher information of
/// the Lambda1 family, the textbook Jeffreys construction. Z is evaluated by
/// the centred difference of ln Lambda1 over integer tau (one-sided at the
/// boundaries); the paper's printed closed forms (Eqs. 36-41) contain typos,
/// see docs/ARCHITECTURE.md. Rows are normalised per v so sum_tau Pr[GED = tau] = 1
/// (the paper's 1/(k1 k2) constant does not normalise the distribution).
///
/// Rows are built lazily per distinct v and cached (the paper precomputes all
/// v in [1, n]; EagerBuild does the same when asked). Thread-safe.
class GedPriorTable {
 public:
  GedPriorTable(int64_t num_vertex_labels, int64_t num_edge_labels,
                int64_t tau_max);

  /// Movable (the mutex is not moved; the source must be quiescent — the
  /// analysis opt-out below is exactly that documented contract: no other
  /// thread may touch `other` during the move, so its guard is moot).
  GedPriorTable(GedPriorTable&& other) noexcept GBDA_NO_THREAD_SAFETY_ANALYSIS
      : num_vertex_labels_(other.num_vertex_labels_),
        num_edge_labels_(other.num_edge_labels_),
        tau_max_(other.tau_max_),
        rows_(std::move(other.rows_)) {}

  /// Pr[GED = tau | extended size v]; 0 for tau outside [0, tau_max].
  double Probability(int64_t tau, int64_t v);

  /// The full normalised row for size v (indexed by tau in [0, tau_max]).
  const std::vector<double>& Row(int64_t v);

  /// Precomputes rows for every v in `sizes` (deduplicated).
  void EagerBuild(const std::vector<int64_t>& sizes);

  int64_t tau_max() const { return tau_max_; }
  int64_t num_vertex_labels() const { return num_vertex_labels_; }
  int64_t num_edge_labels() const { return num_edge_labels_; }
  size_t num_cached_rows() const;
  size_t MemoryBytes() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<GedPriorTable> Deserialize(BinaryReader* reader);

 private:
  std::vector<double> BuildRow(int64_t v) const;

  int64_t num_vertex_labels_;
  int64_t num_edge_labels_;
  int64_t tau_max_;
  mutable Mutex mutex_;
  /// Built rows are append-only and never mutated in place, so the
  /// references Row() hands out stay valid outside the lock (unordered_map
  /// never invalidates value references on rehash).
  std::unordered_map<int64_t, std::vector<double>> rows_
      GBDA_GUARDED_BY(mutex_);
};

}  // namespace gbda
