#pragma once

#include "common/result.h"
#include "graph/graph.h"

namespace gbda {

/// Materialises the extended graph G{k} of Definition 5: k isolated virtual
/// vertices are appended, then a virtual (epsilon-labelled) edge is inserted
/// between every pair of non-adjacent vertices, making the graph complete.
///
/// The paper stresses that extension is purely conceptual — the search engine
/// never materialises it (Theorems 1 and 2 let all computation happen on the
/// originals). This function exists so the tests can verify those theorems on
/// concrete graphs.
Graph ExtendGraph(const Graph& g, size_t k);

/// GED restricted to relabel operations (RV/RE over vertex labels, edge
/// labels including epsilon) between two complete extended graphs of equal
/// size: the minimum over all vertex bijections of the number of label
/// mismatches. This is the quantity Section IV argues equals the original
/// GED (via [21][22]). Exhaustive over permutations — only for n <= 10;
/// fails with ResourceExhausted beyond that.
Result<size_t> RelabelOnlyGedExtended(const Graph& ext1, const Graph& ext2);

}  // namespace gbda
