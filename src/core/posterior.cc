#include "core/posterior.h"

#include <algorithm>

#include "common/string_util.h"

namespace gbda {

PosteriorEngine::PosteriorEngine(int64_t num_vertex_labels,
                                 int64_t num_edge_labels, int64_t tau_max,
                                 GedPriorTable* ged_prior,
                                 const GbdPrior* gbd_prior)
    : num_vertex_labels_(num_vertex_labels),
      num_edge_labels_(num_edge_labels),
      tau_max_(tau_max),
      ged_prior_(ged_prior),
      gbd_prior_(gbd_prior) {}

const Lambda1Calculator& PosteriorEngine::CalculatorFor(int64_t v) {
  auto it = calculators_.find(v);
  if (it == calculators_.end()) {
    it = calculators_
             .emplace(v, std::make_unique<Lambda1Calculator>(
                             MakeModelParams(v, num_vertex_labels_,
                                             num_edge_labels_),
                             tau_max_))
             .first;
  }
  return *it->second;
}

double PosteriorEngine::PhiLocked(int64_t v, int64_t phi, int64_t tau_hat) {
  const auto key = std::make_tuple(v, phi, tau_hat);
  auto memo_it = phi_memo_.find(key);
  if (memo_it != phi_memo_.end()) {
    ++memo_hits_;
    return memo_it->second;
  }
  ++memo_misses_;

  const Lambda1Calculator& calc = CalculatorFor(v);
  const std::vector<double> lambda1 = calc.Column(phi);
  const double lambda2 = gbd_prior_->Probability(phi);
  double total = 0.0;
  for (int64_t tau = 0; tau <= tau_hat; ++tau) {
    const double l1 = lambda1[static_cast<size_t>(tau)];
    if (l1 <= 0.0) continue;
    const double l3 = ged_prior_->Probability(tau, v);
    total += l1 * l3 / lambda2;
  }
  phi_memo_.emplace(key, total);
  return total;
}

namespace {

Status ValidatePhiArgs(int64_t v, int64_t tau_hat, int64_t tau_max) {
  if (tau_hat < 0 || tau_hat > tau_max) {
    return Status::InvalidArgument(
        StrFormat("tau_hat %lld outside the index's [0, %lld] range; rebuild "
                  "the index with a larger tau_max",
                  static_cast<long long>(tau_hat),
                  static_cast<long long>(tau_max)));
  }
  if (v < 1) return Status::InvalidArgument("extended size v must be >= 1");
  return Status::OK();
}

}  // namespace

Result<double> PosteriorEngine::Phi(int64_t v, int64_t phi, int64_t tau_hat) {
  Status valid = ValidatePhiArgs(v, tau_hat, tau_max_);
  if (!valid.ok()) return valid;
  MutexLock lock(&mutex_);
  return PhiLocked(v, phi, tau_hat);
}

Result<std::vector<double>> PosteriorEngine::PhiSuffixMax(int64_t v,
                                                          int64_t tau_hat) {
  Status valid = ValidatePhiArgs(v, tau_hat, tau_max_);
  if (!valid.ok()) return valid;
  MutexLock lock(&mutex_);
  const auto key = std::make_pair(v, tau_hat);
  auto it = suffix_max_memo_.find(key);
  if (it == suffix_max_memo_.end()) {
    // Phi's support in phi ends at cap (see the header comment): Omega3 is a
    // Binomial(r, .) pmf with r <= min(2 * tau_hat, v), identically zero past
    // its support, so every Phi beyond cap is exactly 0.0.
    const int64_t cap = std::min<int64_t>(v, 2 * tau_hat);
    std::vector<double> table(static_cast<size_t>(cap + 1), 0.0);
    for (int64_t phi = 0; phi <= cap; ++phi) {
      table[static_cast<size_t>(phi)] = PhiLocked(v, phi, tau_hat);
    }
    for (int64_t phi = cap - 1; phi >= 0; --phi) {
      table[static_cast<size_t>(phi)] = std::max(
          table[static_cast<size_t>(phi)], table[static_cast<size_t>(phi + 1)]);
    }
    it = suffix_max_memo_.emplace(key, std::move(table)).first;
  }
  return it->second;
}

Result<double> PosteriorEngine::PhiUpperBound(int64_t v, int64_t phi_lower,
                                              int64_t tau_hat) {
  Result<std::vector<double>> table = PhiSuffixMax(v, tau_hat);
  if (!table.ok()) return table.status();
  if (phi_lower < 0) phi_lower = 0;
  if (static_cast<size_t>(phi_lower) >= table->size()) return 0.0;
  return (*table)[static_cast<size_t>(phi_lower)];
}

}  // namespace gbda
