#include "core/prefilter.h"

#include <algorithm>
#include <cmath>

#include "common/kernels.h"

namespace gbda {
namespace {

int64_t SortedMultisetDistance(const std::vector<LabelId>& a,
                               const std::vector<LabelId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return static_cast<int64_t>(std::max(a.size(), b.size()) - common);
}

}  // namespace

// FNV-1a over the branch's root label and ascending edge-label multiset
// (see the header contract).
uint64_t BranchFingerprint(LabelId root, const LabelId* edge_labels,
                           size_t count) {
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  // +1 keeps label id 0 from hashing like "no label".
  mix(static_cast<uint64_t>(root) + 1);
  for (size_t i = 0; i < count; ++i) {
    mix(static_cast<uint64_t>(edge_labels[i]) + 1);
  }
  return h;
}

uint64_t BranchFingerprint(LabelId root,
                           const std::vector<LabelId>& edge_labels) {
  return BranchFingerprint(root, edge_labels.data(), edge_labels.size());
}

FilterProfile BuildFilterProfile(const Graph& g,
                                 const BranchMultiset& branches) {
  FilterProfile p;
  p.num_vertices = static_cast<int64_t>(g.num_vertices());
  p.num_edges = static_cast<int64_t>(g.num_edges());
  p.vertex_labels.reserve(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    p.vertex_labels.push_back(g.VertexLabel(v));
  }
  std::sort(p.vertex_labels.begin(), p.vertex_labels.end());
  p.edge_labels.reserve(g.num_edges());
  for (const Graph::EdgeTriple& e : g.SortedEdges()) {
    p.edge_labels.push_back(e.label);
  }
  std::sort(p.edge_labels.begin(), p.edge_labels.end());
  p.branch_keys.reserve(branches.size());
  for (const Branch& branch : branches) {
    p.branch_keys.push_back(BranchFingerprint(branch.root, branch.edge_labels));
  }
  std::sort(p.branch_keys.begin(), p.branch_keys.end());
  return p;
}

FilterProfile BuildFilterProfile(const Graph& g) {
  return BuildFilterProfile(g, ExtractBranches(g));
}

// Both bounds delegate to the scalar kernel table (common/kernels.h), the
// single reference implementation of the sorted-fingerprint merge; the
// runtime-dispatched scan path calls the same entry points through
// GetScanKernels, so there is exactly one source of truth for the semantics.
int64_t CommonBranchUpperBound(const FilterProfile& a,
                               const FilterProfile& b) {
  const std::vector<uint64_t>& ka = a.branch_keys;
  const std::vector<uint64_t>& kb = b.branch_keys;
  return GetScanKernels(KernelImpl::kScalar)
      .intersect_count(ka.data(), ka.size(), kb.data(), kb.size());
}

bool CommonBranchUpperBoundAtMost(const FilterProfile& a,
                                  const FilterProfile& b, int64_t cap) {
  const std::vector<uint64_t>& ka = a.branch_keys;
  const std::vector<uint64_t>& kb = b.branch_keys;
  return GetScanKernels(KernelImpl::kScalar)
      .intersect_at_most(ka.data(), ka.size(), kb.data(), kb.size(), cap);
}

int64_t FilterLowerBound(const FilterProfile& a, const FilterProfile& b) {
  // Size layer: AV/DV change |V| by one, AE/DE change |E| by one.
  const int64_t dv = std::llabs(a.num_vertices - b.num_vertices);
  const int64_t de = std::llabs(a.num_edges - b.num_edges);
  // Label layer: every operation fixes at most one label mismatch of one
  // kind, and vertex/edge operations are disjoint, so the sum is admissible.
  const int64_t labels =
      SortedMultisetDistance(a.vertex_labels, b.vertex_labels) +
      SortedMultisetDistance(a.edge_labels, b.edge_labels);
  return std::max({dv, de, labels});
}

Prefilter::Prefilter(const GraphDatabase* db) {
  profiles_.reserve(db->size());
  for (size_t i = 0; i < db->size(); ++i) {
    profiles_.push_back(
        std::make_shared<const FilterProfile>(BuildFilterProfile(db->graph(i))));
  }
}

Prefilter::Prefilter(std::vector<std::shared_ptr<const FilterProfile>> profiles)
    : profiles_(std::move(profiles)) {}

std::vector<size_t> Prefilter::Candidates(const Graph& query,
                                          int64_t tau) const {
  const FilterProfile query_profile = BuildFilterProfile(query);
  std::vector<size_t> out;
  for (size_t id = 0; id < profiles_.size(); ++id) {
    if (Passes(query_profile, id, tau)) out.push_back(id);
  }
  return out;
}

bool Prefilter::Passes(const FilterProfile& query_profile, size_t id,
                       int64_t tau) const {
  const FilterProfile& g = *profiles_[id];
  // Cheapest checks first: the size layer is O(1).
  if (std::llabs(query_profile.num_vertices - g.num_vertices) > tau) {
    return false;
  }
  if (std::llabs(query_profile.num_edges - g.num_edges) > tau) return false;
  return FilterLowerBound(query_profile, g) <= tau;
}

size_t Prefilter::MemoryBytes() const {
  size_t bytes = sizeof(Prefilter);
  for (const auto& p : profiles_) {
    bytes += sizeof(FilterProfile) +
             p->vertex_labels.capacity() * sizeof(LabelId) +
             p->edge_labels.capacity() * sizeof(LabelId) +
             p->branch_keys.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace gbda
