#include "core/omega.h"

#include <algorithm>
#include <cmath>

#include "math/discrete_distributions.h"
#include "math/log_combinatorics.h"

namespace gbda {
namespace {

double Choose2(double n) { return n * (n - 1.0) * 0.5; }

}  // namespace

double LogNumBranchTypes(int64_t v, int64_t num_vertex_labels,
                         int64_t num_edge_labels) {
  const double log_lv = std::log(static_cast<double>(std::max<int64_t>(num_vertex_labels, 1)));
  return log_lv + LogBinomial(v + num_edge_labels - 1, num_edge_labels);
}

ModelParams MakeModelParams(int64_t v, int64_t num_vertex_labels,
                            int64_t num_edge_labels) {
  ModelParams p;
  p.v = v;
  p.num_vertex_labels = num_vertex_labels;
  p.num_edge_labels = num_edge_labels;
  p.log_d = LogNumBranchTypes(v, num_vertex_labels, num_edge_labels);
  p.edges = Choose2(static_cast<double>(v));
  p.slots = static_cast<double>(v) + p.edges;
  return p;
}

double Omega1(int64_t x, int64_t tau, const ModelParams& params) {
  return HypergeometricPmf(x, static_cast<int64_t>(params.slots), params.v, tau);
}

double DLogOmega1DTau(int64_t x, int64_t tau, const ModelParams& params) {
  const double t = static_cast<double>(tau);
  const double xd = static_cast<double>(x);
  const double m1 = params.slots;
  const double m2 = params.edges;
  return Digamma(t + 1.0) - Digamma(m1 - t + 1.0) - Digamma(t - xd + 1.0) +
         Digamma(m2 - (t - xd) + 1.0);
}

Omega2Table::Omega2Table(int64_t v, int64_t y_max) : v_(v), y_max_(y_max) {
  const double total_edges = Choose2(static_cast<double>(v));
  rows_.resize(static_cast<size_t>(y_max + 1));
  // Row y = 0: zero edges cover zero vertices.
  rows_[0] = {1.0};
  for (int64_t y = 1; y <= y_max; ++y) {
    const std::vector<double>& prev = rows_[static_cast<size_t>(y - 1)];
    const int64_t m_cap = std::min<int64_t>(2 * y, v);
    std::vector<double> row(static_cast<size_t>(m_cap + 1), 0.0);
    const double denom = total_edges - static_cast<double>(y - 1);
    if (denom <= 0.0) {
      // Fewer than y distinct edges exist: the conditional event is empty.
      rows_[static_cast<size_t>(y)] = std::move(row);
      continue;
    }
    for (int64_t m = 0; m <= m_cap; ++m) {
      double acc = 0.0;
      // Stay at m: the new edge falls inside the covered set. The j = y-1
      // already-chosen edges all lie inside it.
      if (m < static_cast<int64_t>(prev.size())) {
        const double inside =
            Choose2(static_cast<double>(m)) - static_cast<double>(y - 1);
        if (inside > 0.0 && prev[static_cast<size_t>(m)] > 0.0) {
          acc += prev[static_cast<size_t>(m)] * inside;
        }
      }
      // Grow by one: edge between covered (m-1) and uncovered (v-m+1).
      if (m >= 1 && m - 1 < static_cast<int64_t>(prev.size())) {
        const double cross =
            static_cast<double>(m - 1) * static_cast<double>(v - (m - 1));
        if (cross > 0.0) acc += prev[static_cast<size_t>(m - 1)] * cross;
      }
      // Grow by two: edge inside the uncovered set (v - m + 2 vertices).
      if (m >= 2 && m - 2 < static_cast<int64_t>(prev.size())) {
        const double fresh = Choose2(static_cast<double>(v - (m - 2)));
        if (fresh > 0.0) acc += prev[static_cast<size_t>(m - 2)] * fresh;
      }
      row[static_cast<size_t>(m)] = acc / denom;
    }
    rows_[static_cast<size_t>(y)] = std::move(row);
  }
}

double Omega2Table::At(int64_t m, int64_t y) const {
  if (y < 0 || y > y_max_ || m < 0) return 0.0;
  const std::vector<double>& row = rows_[static_cast<size_t>(y)];
  if (m >= static_cast<int64_t>(row.size())) return 0.0;
  return row[static_cast<size_t>(m)];
}

double Omega2InclusionExclusion(int64_t m, int64_t y, int64_t v) {
  if (y == 0) return m == 0 ? 1.0 : 0.0;
  if (m < 0 || m > std::min<int64_t>(2 * y, v)) return 0.0;
  const double log_denom =
      LogBinomialReal(Choose2(static_cast<double>(v)), static_cast<double>(y));
  if (std::isinf(log_denom)) return 0.0;
  const double log_vm = LogBinomial(v, m);
  long double acc = 0.0L;
  for (int64_t t = 0; t <= m; ++t) {
    const double log_term =
        log_vm + LogBinomial(m, t) +
        LogBinomialReal(Choose2(static_cast<double>(t)), static_cast<double>(y)) -
        log_denom;
    if (std::isinf(log_term)) continue;
    const long double term = std::exp(static_cast<long double>(log_term));
    acc += ((m - t) % 2 == 0) ? term : -term;
  }
  if (acc < 0.0L) acc = 0.0L;  // cancellation guard
  return static_cast<double>(acc);
}

double Omega3(int64_t r, int64_t phi, const ModelParams& params) {
  if (phi < 0 || phi > r) return 0.0;
  // p_keep = 1/D; success probability of "branch changed" is (D-1)/D.
  const double log_d = params.log_d;
  if (log_d <= 0.0) {
    // Degenerate single-branch-type universe: nothing can ever change.
    return phi == 0 ? 1.0 : 0.0;
  }
  // ln((D-1)/D) = ln(1 - 1/D).
  const double log_changed = std::log1p(-ExpSafe(-log_d));
  const double log_kept = -log_d;
  return ExpSafe(LogBinomial(r, phi) + static_cast<double>(phi) * log_changed +
                 static_cast<double>(r - phi) * log_kept);
}

double Omega4(int64_t x, int64_t r, int64_t m, const ModelParams& params) {
  return HypergeometricPmf(x + m - r, params.v, m, x);
}

}  // namespace gbda
