#include "core/ged_prior.h"

#include <algorithm>
#include <cmath>

#include "core/lambda1.h"
#include "math/log_combinatorics.h"

namespace gbda {

GedPriorTable::GedPriorTable(int64_t num_vertex_labels, int64_t num_edge_labels,
                             int64_t tau_max)
    : num_vertex_labels_(num_vertex_labels),
      num_edge_labels_(num_edge_labels),
      tau_max_(tau_max) {}

std::vector<double> GedPriorTable::BuildRow(int64_t v) const {
  // One extra tau level so the centred difference has a right neighbour at
  // tau = tau_max.
  const int64_t tau_hi = tau_max_ + 1;
  const ModelParams params =
      MakeModelParams(std::max<int64_t>(v, 1), num_vertex_labels_, num_edge_labels_);
  const Lambda1Calculator calc(params, tau_hi);
  const std::vector<std::vector<double>> lambda1 = calc.Matrix();

  auto log_at = [&](int64_t tau, int64_t phi) {
    const double p = lambda1[static_cast<size_t>(tau)][static_cast<size_t>(phi)];
    return p > 0.0 ? std::log(p) : NegInf();
  };

  std::vector<double> weights(static_cast<size_t>(tau_max_ + 1), 0.0);
  for (int64_t tau = 0; tau <= tau_max_; ++tau) {
    double fisher = 0.0;
    for (int64_t phi = 0; phi <= 2 * tau_hi; ++phi) {
      const double p = lambda1[static_cast<size_t>(tau)][static_cast<size_t>(phi)];
      if (p <= 0.0) continue;
      // Z = d/dtau ln Lambda1 by centred difference, one-sided when a
      // neighbour has zero mass at this phi.
      const double here = std::log(p);
      const double left = tau > 0 ? log_at(tau - 1, phi) : NegInf();
      const double right = log_at(tau + 1, phi);
      double z;
      const bool has_left = !std::isinf(left);
      const bool has_right = !std::isinf(right);
      if (has_left && has_right) {
        z = 0.5 * (right - left);
      } else if (has_right) {
        z = right - here;
      } else if (has_left) {
        z = here - left;
      } else {
        continue;  // isolated support point: no informative derivative
      }
      fisher += p * z * z;
    }
    weights[static_cast<size_t>(tau)] = std::sqrt(std::max(fisher, 0.0));
  }

  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    // Degenerate (e.g. v = 1 with tau beyond the slot count): fall back to a
    // uniform prior over the support of Lambda1.
    std::fill(weights.begin(), weights.end(),
              1.0 / static_cast<double>(tau_max_ + 1));
    return weights;
  }
  for (double& w : weights) w /= total;
  return weights;
}

double GedPriorTable::Probability(int64_t tau, int64_t v) {
  if (tau < 0 || tau > tau_max_) return 0.0;
  return Row(v)[static_cast<size_t>(tau)];
}

const std::vector<double>& GedPriorTable::Row(int64_t v) {
  {
    MutexLock lock(&mutex_);
    auto it = rows_.find(v);
    if (it != rows_.end()) return it->second;
  }
  std::vector<double> row = BuildRow(v);
  MutexLock lock(&mutex_);
  return rows_.emplace(v, std::move(row)).first->second;
}

void GedPriorTable::EagerBuild(const std::vector<int64_t>& sizes) {
  for (int64_t v : sizes) Row(v);
}

size_t GedPriorTable::num_cached_rows() const {
  MutexLock lock(&mutex_);
  return rows_.size();
}

size_t GedPriorTable::MemoryBytes() const {
  MutexLock lock(&mutex_);
  size_t bytes = sizeof(GedPriorTable);
  for (const auto& [v, row] : rows_) {
    (void)v;
    bytes += sizeof(int64_t) + row.capacity() * sizeof(double) + 64;
  }
  return bytes;
}

void GedPriorTable::Serialize(BinaryWriter* writer) const {
  MutexLock lock(&mutex_);
  writer->PutI64(num_vertex_labels_);
  writer->PutI64(num_edge_labels_);
  writer->PutI64(tau_max_);
  writer->PutU64(rows_.size());
  for (const auto& [v, row] : rows_) {
    writer->PutI64(v);
    writer->PutPodVector(row);
  }
}

Result<GedPriorTable> GedPriorTable::Deserialize(BinaryReader* reader) {
  Result<int64_t> lv = reader->GetI64();
  if (!lv.ok()) return lv.status();
  Result<int64_t> le = reader->GetI64();
  if (!le.ok()) return le.status();
  Result<int64_t> tau_max = reader->GetI64();
  if (!tau_max.ok()) return tau_max.status();
  if (*lv < 1 || *le < 1 || *tau_max < 0 || *tau_max > kMaxPlausibleTau) {
    return Status::InvalidArgument("GED prior: implausible header");
  }
  GedPriorTable table(*lv, *le, *tau_max);
  Result<uint64_t> count = reader->GetU64();
  if (!count.ok()) return count.status();
  // Each cached row occupies at least its size key plus the row length word.
  if (*count > reader->remaining() / 16) {
    return Status::OutOfRange("GED prior: row count exceeds file size");
  }
  for (uint64_t i = 0; i < *count; ++i) {
    Result<int64_t> v = reader->GetI64();
    if (!v.ok()) return v.status();
    Result<std::vector<double>> row = reader->GetPodVector<double>();
    if (!row.ok()) return row.status();
    if (row->size() != static_cast<size_t>(*tau_max + 1)) {
      return Status::InvalidArgument("GED prior row has wrong length");
    }
    table.rows_.emplace(*v, std::move(*row));
  }
  return table;
}

}  // namespace gbda
