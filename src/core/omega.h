#pragma once

#include <cstdint>
#include <vector>

namespace gbda {

/// Parameters shared by the Omega terms of the probabilistic model
/// (Section V / Appendix C). `v` is |V'1|, the number of vertices of the
/// extended graph, i.e. max(|V1|, |V2|) for the pair under comparison.
struct ModelParams {
  int64_t v = 1;
  int64_t num_vertex_labels = 1;  // |L_V|
  int64_t num_edge_labels = 1;    // |L_E|
  double log_d = 0.0;             // ln D, D = number of branch types (Eq. 33)
  double edges = 0.0;             // C(v, 2), edge count of the extended graph
  double slots = 0.0;             // v + C(v, 2), total relabel targets
};

ModelParams MakeModelParams(int64_t v, int64_t num_vertex_labels,
                            int64_t num_edge_labels);

/// ln D with D = |L_V| * C(v + |L_E| - 1, |L_E|), the branch-type count of
/// Eq. 33 (the vertex label choices times the multisets of edge labels).
double LogNumBranchTypes(int64_t v, int64_t num_vertex_labels,
                         int64_t num_edge_labels);

/// Omega1 (Eq. 28): probability that a uniformly random set of tau relabel
/// targets (among v vertices and C(v,2) edges of the complete extended graph)
/// contains exactly x vertices: the hypergeometric H(x; v + C(v,2), v, tau).
double Omega1(int64_t x, int64_t tau, const ModelParams& params);

/// Analytic d/dtau ln Omega1 via the continuous (lgamma) extension:
///   psi(tau+1) - psi(M1-tau+1) - psi(tau-x+1) + psi(M2-(tau-x)+1),
/// with M1 = v + C(v,2), M2 = C(v,2). (The printed Eq. 38 differs by what we
/// believe is a typo; see docs/ARCHITECTURE.md. This form matches finite differences,
/// which the tests verify.)
double DLogOmega1DTau(int64_t x, int64_t tau, const ModelParams& params);

/// Omega2 (Eq. 29): probability that y = tau - x uniformly random *distinct*
/// edges of the complete extended graph cover exactly m vertices.
///
/// The paper evaluates this by inclusion-exclusion, which cancels
/// catastrophically for large v (terms reach e^50+ while the sum is <= 1).
/// This table instead runs the exact coverage Markov chain: after j chosen
/// edges covering m vertices, the next distinct edge lands
///   within the covered set      with weight C(m,2) - j,
///   across covered/uncovered    with weight m * (v - m),
///   within the uncovered set    with weight C(v-m, 2),
/// all divided by C(v,2) - j. Every quantity is non-negative, so the
/// recurrence is numerically stable; it agrees with inclusion-exclusion
/// wherever the latter is computable (property-tested).
class Omega2Table {
 public:
  /// Builds rows for y in [0, y_max]. O(y_max^2) states.
  Omega2Table(int64_t v, int64_t y_max);

  /// Pr[Z = m | Y = y]; 0 outside the support. When y exceeds C(v,2) the
  /// event "choose y distinct edges" is impossible and the row is all zero
  /// (consistent with Omega1 assigning such splits probability 0).
  double At(int64_t m, int64_t y) const;

  int64_t y_max() const { return y_max_; }
  int64_t v() const { return v_; }

 private:
  int64_t v_;
  int64_t y_max_;
  std::vector<std::vector<double>> rows_;  // rows_[y][m], m in [0, min(2y, v)]
};

/// Reference implementation of Eq. 29 by inclusion-exclusion. Only reliable
/// for small v (<= ~40) where cancellation is manageable; used by tests to
/// validate Omega2Table.
double Omega2InclusionExclusion(int64_t m, int64_t y, int64_t v);

/// Omega3 (Eq. 30): probability that exactly phi of r touched branches end up
/// different from the originals, each branch independently keeping its type
/// with probability 1/D: the Binomial(r, (D-1)/D) pmf evaluated in log space
/// because D is astronomically large.
double Omega3(int64_t r, int64_t phi, const ModelParams& params);

/// Omega4 (Eq. 31): probability that the x relabelled vertices overlap the m
/// edge-covered vertices in exactly t = x + m - r positions: the
/// hypergeometric H(x + m - r; v, m, x).
double Omega4(int64_t x, int64_t r, int64_t m, const ModelParams& params);

}  // namespace gbda
