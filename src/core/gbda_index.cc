#include "core/gbda_index.h"

#include <cmath>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>

#include "common/crc32.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace gbda {
namespace {

// v2 persists the full GbdPriorOptions (GMM fit knobs + probability floor),
// so RefitGbdPrior on a loaded index runs the exact arithmetic Build would.
constexpr uint32_t kIndexVersion = 2;

// Integrity footer appended after the v2 payload: per-section CRC32 sums
// over the byte ranges [0, header_end), [header_end, branches_end),
// [branches_end, gbd_end), [gbd_end, ged_end). The read side is backward
// compatible — a footer-less payload (pre-footer writer) still loads — but
// when the footer is present every checksum must verify, so a flipped bit
// anywhere in the artifact is caught at load time instead of surfacing as a
// silently wrong query result.
constexpr uint32_t kFooterMagic = 0x47424346;  // "GBCF"
constexpr uint32_t kFooterSectionCount = 4;
static_assert(kIndexV2FooterBytes ==
                  2 * sizeof(uint32_t) + kFooterSectionCount * sizeof(uint32_t),
              "exported footer size must match the footer layout");
const char* const kFooterSectionNames[kFooterSectionCount] = {
    "header", "branches", "gbd_prior", "ged_prior"};

// Plausibility bounds for on-disk header fields. A hostile file can claim
// any value; these only need to admit every index this library can build.
// (kMaxPlausibleTau is shared with the GED-prior decoder; the loader
// cross-checks the two headers for equality.)
constexpr int64_t kMaxPlausibleLabels = int64_t{1} << 32;  // LabelId is u32
// Both feed int fields of GmmFitOptions, so the bounds must stay below
// INT_MAX or the validated value would wrap in the narrowing cast.
constexpr int64_t kMaxPlausibleComponents = 1 << 16;
constexpr int64_t kMaxPlausibleIterations = 1 << 30;

size_t BranchMultisetBytes(const BranchMultiset& ms) {
  size_t bytes = sizeof(BranchMultiset);
  for (const Branch& b : ms) {
    bytes += sizeof(Branch) + b.edge_labels.capacity() * sizeof(LabelId);
  }
  return bytes;
}

// Minimum encoded footprint of one record, used to validate on-disk counts
// against the bytes actually remaining before any allocation happens.
constexpr size_t kMinGraphRecordBytes = 8;    // u64 branch count
constexpr size_t kMinBranchRecordBytes = 12;  // u32 root + u64 vector length

}  // namespace

Result<GbdaIndex> GbdaIndex::Build(const GraphDatabase& db,
                                   const GbdaIndexOptions& options) {
  if (db.empty()) return Status::InvalidArgument("index build: empty database");
  if (db.has_tombstones()) {
    return Status::InvalidArgument(
        "index build: database has tombstones; Build covers the frozen "
        "offline stage — serve a mutable corpus through DynamicGbdaService");
  }
  if (options.tau_max < 0) {
    return Status::InvalidArgument("index build: tau_max must be >= 0");
  }
  GbdaIndex index;
  index.options_ = options;
  index.num_vertex_labels_ =
      options.model_vertex_labels > 0
          ? options.model_vertex_labels
          : static_cast<int64_t>(db.vertex_labels().num_real_labels());
  index.num_edge_labels_ =
      options.model_edge_labels > 0
          ? options.model_edge_labels
          : static_cast<int64_t>(db.edge_labels().num_real_labels());

  // Branch multisets (the auxiliary structure of Section III).
  WallTimer timer;
  index.branches_.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    index.branches_.push_back(
        std::make_shared<const BranchMultiset>(ExtractBranches(db.graph(i))));
    index.vertex_sum_ += static_cast<double>(db.graph(i).num_vertices());
  }
  index.num_live_ = db.size();
  index.costs_.branch_seconds = timer.Seconds();
  for (const auto& b : index.branches_) {
    index.costs_.branch_bytes += BranchMultisetBytes(*b);
  }

  // Lambda2: GMM prior over GBDs. RefitGbdPrior runs the identical
  // arithmetic later in the index's life, so incremental maintenance stays
  // bit-compatible with a from-scratch Build.
  timer.Restart();
  Status fit = index.RefitGbdPrior();
  if (!fit.ok()) return fit;
  index.costs_.gbd_prior_seconds = timer.Seconds();

  // Lambda3: Jeffreys prior rows.
  timer.Restart();
  index.ged_prior_ = std::make_shared<GedPriorTable>(
      index.num_vertex_labels_, index.num_edge_labels_, options.tau_max);
  std::vector<int64_t> sizes;
  if (options.eager_all_sizes) {
    const int64_t n = static_cast<int64_t>(db.MaxVertices());
    sizes.resize(static_cast<size_t>(n));
    std::iota(sizes.begin(), sizes.end(), int64_t{1});
  } else {
    std::set<int64_t> distinct;
    for (size_t i = 0; i < db.size(); ++i) {
      distinct.insert(static_cast<int64_t>(db.graph(i).num_vertices()));
    }
    sizes.assign(distinct.begin(), distinct.end());
  }
  index.ged_prior_->EagerBuild(sizes);
  index.costs_.ged_prior_seconds = timer.Seconds();
  index.costs_.ged_prior_bytes = index.ged_prior_->MemoryBytes();
  return index;
}

Result<GbdaIndex> GbdaIndex::FromParts(const GbdaIndexOptions& options,
                                       int64_t num_vertex_labels,
                                       int64_t num_edge_labels,
                                       std::vector<BranchMultiset> branches,
                                       GbdPrior gbd_prior,
                                       GedPriorTable ged_prior) {
  Status header_ok = ValidatePersistedIndexHeader(
      options, num_vertex_labels, num_edge_labels, /*avg_vertices=*/0.0);
  if (!header_ok.ok()) {
    return Status::InvalidArgument("index from parts: " + header_ok.message());
  }
  if (ged_prior.tau_max() != options.tau_max ||
      ged_prior.num_vertex_labels() != num_vertex_labels ||
      ged_prior.num_edge_labels() != num_edge_labels) {
    return Status::InvalidArgument(
        "index from parts: GED prior header disagrees with the index header");
  }
  GbdaIndex index;
  index.options_ = options;
  index.num_vertex_labels_ = num_vertex_labels;
  index.num_edge_labels_ = num_edge_labels;
  index.branches_.reserve(branches.size());
  for (BranchMultiset& ms : branches) {
    index.vertex_sum_ += static_cast<double>(ms.size());
    index.branches_.push_back(
        std::make_shared<const BranchMultiset>(std::move(ms)));
  }
  index.num_live_ = index.branches_.size();
  index.gbd_prior_ = std::make_shared<const GbdPrior>(std::move(gbd_prior));
  index.ged_prior_ = std::make_shared<GedPriorTable>(std::move(ged_prior));
  return index;
}

CandidateColumns GbdaIndex::columns() const {
  ColumnCache* cache = column_cache_.get();
  MutexLock lock(&cache->mu);
  if (!cache->built) {
    cache->columns = BuildCandidateColumns(*this);
    cache->built = true;
  }
  // The returned pointers outlive the lock: once built, the cache object is
  // immutable — mutations swap in a whole new cache instead.
  return cache->columns.View();
}

size_t GbdaIndex::AddGraph(const Graph& g) {
  branches_.push_back(
      std::make_shared<const BranchMultiset>(ExtractBranches(g)));
  costs_.branch_bytes += BranchMultisetBytes(*branches_.back());
  vertex_sum_ += static_cast<double>(g.num_vertices());
  ++num_live_;
  ++gbd_staleness_;
  column_cache_ = std::make_shared<ColumnCache>();
  return branches_.size() - 1;
}

Status GbdaIndex::RemoveGraphs(const std::vector<size_t>& ids) {
  Status valid = ValidateRemovalBatch(
      ids, branches_.size(),
      [this](size_t id) { return branches_[id] != nullptr; },
      "index RemoveGraphs");
  if (!valid.ok()) return valid;
  for (size_t id : ids) {
    vertex_sum_ -= static_cast<double>(branches_[id]->size());
    costs_.branch_bytes -= BranchMultisetBytes(*branches_[id]);
    branches_[id] = nullptr;
    --num_live_;
    ++gbd_staleness_;
  }
  column_cache_ = std::make_shared<ColumnCache>();
  return Status::OK();
}

Status GbdaIndex::RefitGbdPrior() {
  std::vector<const BranchMultiset*> live;
  live.reserve(num_live_);
  for (const auto& b : branches_) {
    if (b) live.push_back(b.get());
  }
  Rng rng(options_.seed);
  Result<GbdPrior> prior = GbdPrior::Fit(live, options_.gbd_prior, &rng);
  if (!prior.ok()) return prior.status();
  gbd_prior_ = std::make_shared<const GbdPrior>(std::move(*prior));
  gbd_staleness_ = 0;
  costs_.gbd_prior_bytes = gbd_prior_->MemoryBytes();
  costs_.pairs_sampled = gbd_prior_->pairs_sampled();
  return Status::OK();
}

void GbdaIndex::RefreshModelLabels(int64_t num_vertex_labels,
                                   int64_t num_edge_labels) {
  if (num_vertex_labels == num_vertex_labels_ &&
      num_edge_labels == num_edge_labels_) {
    return;
  }
  num_vertex_labels_ = num_vertex_labels;
  num_edge_labels_ = num_edge_labels;
  // Lambda3 rows depend on the label universe; swap in a fresh table and let
  // rows rebuild lazily. Published snapshots keep the old table alive.
  ged_prior_ = std::make_shared<GedPriorTable>(num_vertex_labels_,
                                               num_edge_labels_,
                                               options_.tau_max);
}

GbdaIndex GbdaIndex::CompactView(std::vector<size_t>* live_ids_out) const {
  GbdaIndex dense;
  dense.options_ = options_;
  dense.num_vertex_labels_ = num_vertex_labels_;
  dense.num_edge_labels_ = num_edge_labels_;
  dense.vertex_sum_ = vertex_sum_;
  dense.num_live_ = num_live_;
  dense.gbd_staleness_ = gbd_staleness_;
  dense.gbd_prior_ = gbd_prior_;
  dense.ged_prior_ = ged_prior_;
  dense.costs_ = costs_;
  dense.branches_.reserve(num_live_);
  if (live_ids_out) {
    live_ids_out->clear();
    live_ids_out->reserve(num_live_);
  }
  for (size_t id = 0; id < branches_.size(); ++id) {
    if (!branches_[id]) continue;
    dense.branches_.push_back(branches_[id]);
    if (live_ids_out) live_ids_out->push_back(id);
  }
  return dense;
}

Status GbdaIndex::SaveToFile(const std::string& path) const {
  if (num_live_ != branches_.size()) {
    return Status::FailedPrecondition(
        "index save: tombstoned indexes cannot be persisted");
  }
  // The format has no staleness field: a loaded index always reports
  // gbd_staleness() == 0, so persisting a drifted Lambda2 would silently
  // lose the drift marker. Refit (or Flush through the dynamic service)
  // before saving.
  if (gbd_staleness_ != 0) {
    return Status::FailedPrecondition(
        "index save: Lambda2 is stale (mutations since last fit); refit "
        "before persisting");
  }
  BinaryWriter writer;
  writer.PutU32(kIndexV2Magic);
  writer.PutU32(kIndexVersion);
  writer.PutI64(options_.tau_max);
  writer.PutU64(options_.gbd_prior.num_sample_pairs);
  writer.PutU64(options_.seed);
  // v2: the remaining GbdPriorOptions, so a later RefitGbdPrior on the
  // loaded index reproduces Build's arithmetic exactly.
  writer.PutDouble(options_.gbd_prior.probability_floor);
  writer.PutI64(options_.gbd_prior.gmm.num_components);
  writer.PutI64(options_.gbd_prior.gmm.max_iterations);
  writer.PutDouble(options_.gbd_prior.gmm.tolerance);
  writer.PutDouble(options_.gbd_prior.gmm.stddev_floor);
  writer.PutU64(options_.gbd_prior.gmm.seed);
  writer.PutI64(num_vertex_labels_);
  writer.PutI64(num_edge_labels_);
  writer.PutDouble(avg_vertices());
  const size_t header_end = writer.buffer().size();
  writer.PutU64(branches_.size());
  for (const auto& ms_ptr : branches_) {
    const BranchMultiset& ms = *ms_ptr;
    writer.PutU64(ms.size());
    for (const Branch& b : ms) {
      writer.PutU32(b.root);
      writer.PutPodVector(b.edge_labels);
    }
  }
  const size_t branches_end = writer.buffer().size();
  gbd_prior_->Serialize(&writer);
  const size_t gbd_end = writer.buffer().size();
  ged_prior_->Serialize(&writer);
  const size_t ged_end = writer.buffer().size();

  // Integrity footer: one CRC32 per section (header / branches / priors).
  // Compatibility is one-way by design: this loader accepts both footered
  // and footer-less v2 payloads, but pre-footer builds reject a footered
  // artifact as "trailing bytes" — re-reading new artifacts with old
  // binaries requires stripping the last kIndexV2FooterBytes.
  const char* bytes = writer.buffer().data();
  const uint32_t crcs[kFooterSectionCount] = {
      Crc32(bytes, header_end),
      Crc32(bytes + header_end, branches_end - header_end),
      Crc32(bytes + branches_end, gbd_end - branches_end),
      Crc32(bytes + gbd_end, ged_end - gbd_end)};
  writer.PutU32(kFooterMagic);
  writer.PutU32(kFooterSectionCount);
  for (uint32_t crc : crcs) writer.PutU32(crc);

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(writer.buffer().data(),
            static_cast<std::streamsize>(writer.buffer().size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ValidatePersistedIndexHeader(const GbdaIndexOptions& options,
                                    int64_t num_vertex_labels,
                                    int64_t num_edge_labels,
                                    double avg_vertices) {
  if (options.tau_max < 0 || options.tau_max > kMaxPlausibleTau) {
    return Status::InvalidArgument("implausible tau_max");
  }
  // Bounded like tau_max: the field feeds a later RefitGbdPrior, and an
  // absurd pair budget would make the fit enumerate every corpus pair.
  if (options.gbd_prior.num_sample_pairs > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("implausible sample pairs");
  }
  const GmmFitOptions& gmm = options.gbd_prior.gmm;
  if (!std::isfinite(options.gbd_prior.probability_floor) ||
      options.gbd_prior.probability_floor < 0.0 || gmm.num_components < 1 ||
      gmm.num_components > kMaxPlausibleComponents || gmm.max_iterations < 1 ||
      gmm.max_iterations > kMaxPlausibleIterations ||
      !std::isfinite(gmm.tolerance) || gmm.tolerance < 0.0 ||
      !std::isfinite(gmm.stddev_floor) || gmm.stddev_floor <= 0.0) {
    return Status::InvalidArgument("implausible prior options");
  }
  if (num_vertex_labels < 1 || num_vertex_labels > kMaxPlausibleLabels ||
      num_edge_labels < 1 || num_edge_labels > kMaxPlausibleLabels) {
    return Status::InvalidArgument("implausible label universe");
  }
  if (!std::isfinite(avg_vertices) || avg_vertices < 0.0) {
    return Status::InvalidArgument("implausible avg_vertices");
  }
  return Status::OK();
}

Result<GbdaIndex> GbdaIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  BinaryReader reader(data, path);
  // Every structural complaint names the artifact and the byte offset of
  // the offending record (BinaryReader's own failures already do).
  const auto fail = [&reader](const std::string& what) {
    return Status::InvalidArgument(
        reader.Describe("index load: " + what, reader.position()));
  };

  Result<uint32_t> magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kIndexV2Magic) {
    return Status::InvalidArgument("not a GBDA index file: " + path);
  }
  Result<uint32_t> version = reader.GetU32();
  if (!version.ok()) return version.status();
  if (*version != kIndexVersion) {
    return Status::NotSupported(
        "unsupported index version " + std::to_string(*version) + " in " +
        path + " (this build reads v2 streams; v3 arenas open through "
        "GbdaIndexView)");
  }

  GbdaIndex index;
  Result<int64_t> tau_max = reader.GetI64();
  if (!tau_max.ok()) return tau_max.status();
  index.options_.tau_max = *tau_max;
  Result<uint64_t> pairs = reader.GetU64();
  if (!pairs.ok()) return pairs.status();
  index.options_.gbd_prior.num_sample_pairs = *pairs;
  Result<uint64_t> seed = reader.GetU64();
  if (!seed.ok()) return seed.status();
  index.options_.seed = *seed;
  Result<double> prob_floor = reader.GetDouble();
  if (!prob_floor.ok()) return prob_floor.status();
  Result<int64_t> ncomp = reader.GetI64();
  if (!ncomp.ok()) return ncomp.status();
  Result<int64_t> iters = reader.GetI64();
  if (!iters.ok()) return iters.status();
  Result<double> tol = reader.GetDouble();
  if (!tol.ok()) return tol.status();
  Result<double> sd_floor = reader.GetDouble();
  if (!sd_floor.ok()) return sd_floor.status();
  Result<uint64_t> gmm_seed = reader.GetU64();
  if (!gmm_seed.ok()) return gmm_seed.status();
  if (*ncomp < 1 || *ncomp > kMaxPlausibleComponents || *iters < 1 ||
      *iters > kMaxPlausibleIterations) {
    // Validated before the narrowing casts below; everything else funnels
    // through ValidatePersistedIndexHeader once the fields are assembled.
    return fail("implausible prior options");
  }
  index.options_.gbd_prior.probability_floor = *prob_floor;
  index.options_.gbd_prior.gmm.num_components = static_cast<int>(*ncomp);
  index.options_.gbd_prior.gmm.max_iterations = static_cast<int>(*iters);
  index.options_.gbd_prior.gmm.tolerance = *tol;
  index.options_.gbd_prior.gmm.stddev_floor = *sd_floor;
  index.options_.gbd_prior.gmm.seed = *gmm_seed;
  Result<int64_t> lv = reader.GetI64();
  if (!lv.ok()) return lv.status();
  Result<int64_t> le = reader.GetI64();
  if (!le.ok()) return le.status();
  index.num_vertex_labels_ = *lv;
  index.num_edge_labels_ = *le;
  Result<double> avg_v = reader.GetDouble();
  if (!avg_v.ok()) return avg_v.status();
  Status header_ok = ValidatePersistedIndexHeader(
      index.options_, index.num_vertex_labels_, index.num_edge_labels_,
      *avg_v);
  if (!header_ok.ok()) return fail(header_ok.message());
  const size_t header_end = reader.position();

  Result<uint64_t> num_graphs = reader.GetU64();
  if (!num_graphs.ok()) return num_graphs.status();
  // Every graph record occupies at least its branch-count word, so a count
  // exceeding remaining/8 cannot be honest. Checking BEFORE resize keeps a
  // hostile 16-byte file from demanding gigabytes.
  if (*num_graphs > reader.remaining() / kMinGraphRecordBytes) {
    return Status::OutOfRange(reader.Describe(
        "index load: graph count exceeds file size", header_end));
  }
  index.branches_.reserve(static_cast<size_t>(*num_graphs));
  for (uint64_t i = 0; i < *num_graphs; ++i) {
    const size_t graph_at = reader.position();
    Result<uint64_t> count = reader.GetU64();
    if (!count.ok()) return count.status();
    if (*count > reader.remaining() / kMinBranchRecordBytes) {
      return Status::OutOfRange(reader.Describe(
          "index load: branch count of graph " + std::to_string(i) +
              " exceeds file size",
          graph_at));
    }
    BranchMultiset ms;
    ms.resize(static_cast<size_t>(*count));
    for (uint64_t j = 0; j < *count; ++j) {
      Result<uint32_t> root = reader.GetU32();
      if (!root.ok()) return root.status();
      Result<std::vector<LabelId>> labels = reader.GetPodVector<LabelId>();
      if (!labels.ok()) return labels.status();
      ms[j].root = *root;
      ms[j].edge_labels = std::move(*labels);
    }
    index.vertex_sum_ += static_cast<double>(ms.size());
    index.branches_.push_back(
        std::make_shared<const BranchMultiset>(std::move(ms)));
  }
  index.num_live_ = index.branches_.size();
  const size_t branches_end = reader.position();

  Result<GbdPrior> prior = GbdPrior::Deserialize(&reader);
  if (!prior.ok()) return prior.status();
  index.gbd_prior_ = std::make_shared<const GbdPrior>(std::move(*prior));
  const size_t gbd_end = reader.position();
  Result<GedPriorTable> ged = GedPriorTable::Deserialize(&reader);
  if (!ged.ok()) return ged.status();
  // The embedded prior carries its own header; a crafted file could pass
  // both independent plausibility checks with inconsistent values and then
  // serve silently wrong scores (e.g. zero GED mass above the embedded
  // tau_max while the index admits larger tau_hat).
  if (ged->tau_max() != index.options_.tau_max ||
      ged->num_vertex_labels() != index.num_vertex_labels_ ||
      ged->num_edge_labels() != index.num_edge_labels_) {
    return fail("GED prior header disagrees with the index header");
  }
  index.ged_prior_ = std::make_shared<GedPriorTable>(std::move(*ged));
  const size_t ged_end = reader.position();

  // Optional integrity footer (see SaveToFile). Footer-less payloads load
  // for backward compatibility; anything else trailing is rejected, and a
  // present footer must verify section by section.
  if (reader.remaining() == 0) return index;
  if (reader.remaining() != kIndexV2FooterBytes) {
    return fail("trailing bytes after index");
  }
  Result<uint32_t> footer_magic = reader.GetU32();
  if (!footer_magic.ok()) return footer_magic.status();
  if (*footer_magic != kFooterMagic) return fail("trailing bytes after index");
  Result<uint32_t> footer_sections = reader.GetU32();
  if (!footer_sections.ok()) return footer_sections.status();
  if (*footer_sections != kFooterSectionCount) {
    return fail("unexpected footer section count");
  }
  const size_t bounds[kFooterSectionCount + 1] = {0, header_end, branches_end,
                                                  gbd_end, ged_end};
  for (size_t s = 0; s < kFooterSectionCount; ++s) {
    Result<uint32_t> stored = reader.GetU32();
    if (!stored.ok()) return stored.status();
    const uint32_t actual =
        Crc32(data.data() + bounds[s], bounds[s + 1] - bounds[s]);
    if (actual != *stored) {
      return Status::DataLoss(reader.Describe(
          "index load: CRC32 mismatch in section '" +
              std::string(kFooterSectionNames[s]) + "'",
          bounds[s]));
    }
  }
  return index;
}

Status ValidateIndexForDatabase(const GraphDatabase& db,
                                const IndexReader& index) {
  if (index.num_graphs() != db.size()) {
    return Status::FailedPrecondition(
        "index/database mismatch: index covers " +
        std::to_string(index.num_graphs()) + " graphs, database holds " +
        std::to_string(db.size()) +
        " (stale index artifact? rebuild or reload the matching generation)");
  }
  // The frozen consumers behind this check (GbdaSearch, GbdaService) scan
  // every slot; a tombstoned pair — even a mutually consistent one — would
  // evaluate retired slots as empty multisets and could return removed
  // graphs as matches. Mutable corpora go through DynamicGbdaService.
  if (db.has_tombstones() || index.num_live() != index.num_graphs()) {
    return Status::FailedPrecondition(
        "index/database pair is tombstoned: frozen-world consumers cannot "
        "serve a mutated corpus — use DynamicGbdaService");
  }
  for (size_t id = 0; id < db.size(); ++id) {
    if (index.branch_set(id).size() != db.graph(id).num_vertices()) {
      return Status::FailedPrecondition(
          "index/database mismatch: branch multiset of graph " +
          std::to_string(id) + " does not match the stored graph");
    }
  }
  return Status::OK();
}

}  // namespace gbda
