#include "core/gbda_index.h"

#include <fstream>
#include <numeric>
#include <set>
#include <sstream>

#include "common/serialize.h"
#include "common/timer.h"

namespace gbda {
namespace {

constexpr uint32_t kIndexMagic = 0x47424441;  // "GBDA"
constexpr uint32_t kIndexVersion = 1;

}  // namespace

Result<GbdaIndex> GbdaIndex::Build(const GraphDatabase& db,
                                   const GbdaIndexOptions& options) {
  if (db.empty()) return Status::InvalidArgument("index build: empty database");
  if (options.tau_max < 0) {
    return Status::InvalidArgument("index build: tau_max must be >= 0");
  }
  GbdaIndex index;
  index.options_ = options;
  index.num_vertex_labels_ =
      options.model_vertex_labels > 0
          ? options.model_vertex_labels
          : static_cast<int64_t>(db.vertex_labels().num_real_labels());
  index.num_edge_labels_ =
      options.model_edge_labels > 0
          ? options.model_edge_labels
          : static_cast<int64_t>(db.edge_labels().num_real_labels());

  // Branch multisets (the auxiliary structure of Section III).
  WallTimer timer;
  index.branches_.reserve(db.size());
  double vertex_sum = 0.0;
  for (size_t i = 0; i < db.size(); ++i) {
    index.branches_.push_back(ExtractBranches(db.graph(i)));
    vertex_sum += static_cast<double>(db.graph(i).num_vertices());
  }
  index.avg_vertices_ = vertex_sum / static_cast<double>(db.size());
  index.costs_.branch_seconds = timer.Seconds();
  for (const auto& b : index.branches_) {
    index.costs_.branch_bytes += sizeof(BranchMultiset);
    for (const auto& br : b) {
      index.costs_.branch_bytes +=
          sizeof(Branch) + br.edge_labels.capacity() * sizeof(LabelId);
    }
  }

  // Lambda2: GMM prior over GBDs.
  timer.Restart();
  Rng rng(options.seed);
  Result<GbdPrior> prior = GbdPrior::Fit(index.branches_, options.gbd_prior, &rng);
  if (!prior.ok()) return prior.status();
  index.gbd_prior_ = std::move(*prior);
  index.costs_.gbd_prior_seconds = timer.Seconds();
  index.costs_.gbd_prior_bytes = index.gbd_prior_.MemoryBytes();
  index.costs_.pairs_sampled = index.gbd_prior_.pairs_sampled();

  // Lambda3: Jeffreys prior rows.
  timer.Restart();
  index.ged_prior_ = std::make_unique<GedPriorTable>(
      index.num_vertex_labels_, index.num_edge_labels_, options.tau_max);
  std::vector<int64_t> sizes;
  if (options.eager_all_sizes) {
    const int64_t n = static_cast<int64_t>(db.MaxVertices());
    sizes.resize(static_cast<size_t>(n));
    std::iota(sizes.begin(), sizes.end(), int64_t{1});
  } else {
    std::set<int64_t> distinct;
    for (size_t i = 0; i < db.size(); ++i) {
      distinct.insert(static_cast<int64_t>(db.graph(i).num_vertices()));
    }
    sizes.assign(distinct.begin(), distinct.end());
  }
  index.ged_prior_->EagerBuild(sizes);
  index.costs_.ged_prior_seconds = timer.Seconds();
  index.costs_.ged_prior_bytes = index.ged_prior_->MemoryBytes();
  return index;
}

Status GbdaIndex::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  writer.PutU32(kIndexMagic);
  writer.PutU32(kIndexVersion);
  writer.PutI64(options_.tau_max);
  writer.PutU64(options_.gbd_prior.num_sample_pairs);
  writer.PutU64(options_.seed);
  writer.PutI64(num_vertex_labels_);
  writer.PutI64(num_edge_labels_);
  writer.PutDouble(avg_vertices_);
  writer.PutU64(branches_.size());
  for (const BranchMultiset& ms : branches_) {
    writer.PutU64(ms.size());
    for (const Branch& b : ms) {
      writer.PutU32(b.root);
      writer.PutPodVector(b.edge_labels);
    }
  }
  gbd_prior_.Serialize(&writer);
  ged_prior_->Serialize(&writer);

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(writer.buffer().data(),
            static_cast<std::streamsize>(writer.buffer().size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<GbdaIndex> GbdaIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  BinaryReader reader(data);

  Result<uint32_t> magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kIndexMagic) {
    return Status::InvalidArgument("not a GBDA index file: " + path);
  }
  Result<uint32_t> version = reader.GetU32();
  if (!version.ok()) return version.status();
  if (*version != kIndexVersion) {
    return Status::NotSupported("unsupported index version");
  }

  GbdaIndex index;
  Result<int64_t> tau_max = reader.GetI64();
  if (!tau_max.ok()) return tau_max.status();
  index.options_.tau_max = *tau_max;
  Result<uint64_t> pairs = reader.GetU64();
  if (!pairs.ok()) return pairs.status();
  index.options_.gbd_prior.num_sample_pairs = *pairs;
  Result<uint64_t> seed = reader.GetU64();
  if (!seed.ok()) return seed.status();
  index.options_.seed = *seed;
  Result<int64_t> lv = reader.GetI64();
  if (!lv.ok()) return lv.status();
  index.num_vertex_labels_ = *lv;
  Result<int64_t> le = reader.GetI64();
  if (!le.ok()) return le.status();
  index.num_edge_labels_ = *le;
  Result<double> avg_v = reader.GetDouble();
  if (!avg_v.ok()) return avg_v.status();
  index.avg_vertices_ = *avg_v;

  Result<uint64_t> num_graphs = reader.GetU64();
  if (!num_graphs.ok()) return num_graphs.status();
  index.branches_.resize(*num_graphs);
  for (uint64_t i = 0; i < *num_graphs; ++i) {
    Result<uint64_t> count = reader.GetU64();
    if (!count.ok()) return count.status();
    BranchMultiset& ms = index.branches_[i];
    ms.resize(*count);
    for (uint64_t j = 0; j < *count; ++j) {
      Result<uint32_t> root = reader.GetU32();
      if (!root.ok()) return root.status();
      Result<std::vector<LabelId>> labels = reader.GetPodVector<LabelId>();
      if (!labels.ok()) return labels.status();
      ms[j].root = *root;
      ms[j].edge_labels = std::move(*labels);
    }
  }

  Result<GbdPrior> prior = GbdPrior::Deserialize(&reader);
  if (!prior.ok()) return prior.status();
  index.gbd_prior_ = std::move(*prior);
  Result<GedPriorTable> ged = GedPriorTable::Deserialize(&reader);
  if (!ged.ok()) return ged.status();
  index.ged_prior_ = std::make_unique<GedPriorTable>(std::move(*ged));
  return index;
}

}  // namespace gbda
