#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace gbda {

/// Options for one known-GED family (Appendix I).
struct FamilyOptions {
  /// Shape of the template graph.
  GeneratorOptions generator;
  /// Number of member graphs to derive (including the unmodified template).
  size_t num_members = 10;
  /// Maximum number of modified pool edges per member; pairwise GED then
  /// ranges over [0, 2 * max_modifications].
  size_t max_modifications = 5;
  /// Number of modification centers. Centers are chosen pairwise at distance
  /// >= 3 so their edits touch disjoint branch neighbourhoods — this spreads
  /// the modifications over the graph the way arbitrary edit sequences
  /// would, instead of concentrating them on one hub.
  size_t num_centers = 1;
  /// Minimum degree per center (raised by adding edges when the template
  /// falls short). The modification pool has ~num_centers * center_min_degree
  /// edges; C(pool, <= max_modifications) must cover num_members.
  size_t center_min_degree = 8;
  /// Hops used by the neighbour-signature distinctness check.
  int signature_hops = 2;
  /// Template re-generation attempts before giving up.
  size_t max_attempts = 64;

  /// Fraction of modifications that delete the pool edge instead of
  /// relabelling it. Deletions perturb degrees and topology, which spreads
  /// members structurally (and may disconnect them — only the template is
  /// required to be connected, mirroring Appendix I).
  double delete_fraction = 0.25;

  /// Optional identity markers: a path of `num_marker_vertices` extra
  /// vertices carrying `marker_vertex_label`, chained and attached to the
  /// template with `marker_edge_label` edges. When every family uses its own
  /// marker labels, any cross-family pair satisfies
  ///   GED >= 2 * num_marker_vertices
  /// by the vertex+edge label-multiset lower bound — the certification the
  /// benchmark datasets use for "far" pairs. Markers are never modified and
  /// never selected as centers. The final member size is
  /// generator.num_vertices + num_marker_vertices.
  size_t num_marker_vertices = 0;
  LabelId marker_vertex_label = kVirtualLabel;
  LabelId marker_edge_label = kVirtualLabel;
};

/// State of one pool edge in one family member.
enum class PoolEdgeState : uint8_t {
  kOriginal = 0,
  kRelabeled = 1,  // rotated within the core edge alphabet
  kDeleted = 2,
};

/// A family of graphs derived from one template by relabelling or deleting
/// subsets of a pool of center-incident edges. For members i and j,
/// GED(member_i, member_j) is exactly the Hamming distance between their
/// pool-state vectors: each differing edge needs one operation (RE, DE or AE
/// with the right label), and the pairwise-distinct neighbour signatures
/// plus center separation rule out cheaper mappings (verified against exact
/// A* GED in the test suite).
struct KnownGedFamily {
  std::vector<Graph> members;
  /// Per member: the state of every pool edge (size == edge_pool.size()).
  /// Member 0 is the unmodified template (all kOriginal).
  std::vector<std::vector<PoolEdgeState>> member_states;
  /// The selected modification centers.
  std::vector<uint32_t> centers;
  /// The modifiable edges as (center, neighbour) pairs.
  std::vector<std::pair<uint32_t, uint32_t>> edge_pool;

  /// Exact GED between two members: Hamming distance of the state vectors.
  int64_t KnownGed(size_t i, size_t j) const;
};

/// Hamming distance between two equally sized state vectors.
int64_t StateHammingDistance(const std::vector<PoolEdgeState>& a,
                             const std::vector<PoolEdgeState>& b);

/// Generates one family. Fails when no template with enough valid
/// modification centers is found within max_attempts, or when the option set
/// is inconsistent (fewer available edge subsets than members, or an edge
/// alphabet too small to relabel at all).
Result<KnownGedFamily> GenerateKnownGedFamily(const FamilyOptions& options,
                                              Rng* rng);

/// |A symmetric-difference B| for sorted index vectors.
int64_t SymmetricDifferenceSize(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b);

}  // namespace gbda
