#include "datagen/signature.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/string_util.h"

namespace gbda {

std::string KHopSignature(const Graph& g, uint32_t vertex, int hops) {
  // BFS ring by ring; each ring contributes a sorted list of
  // (vertex label, entering edge label) pairs.
  std::string sig = StrFormat("s0:%u", g.VertexLabel(vertex));
  std::vector<int> dist(g.num_vertices(), -1);
  dist[vertex] = 0;
  std::vector<uint32_t> frontier = {vertex};
  for (int k = 1; k <= hops && !frontier.empty(); ++k) {
    std::vector<std::pair<LabelId, LabelId>> ring;  // (vertex label, edge label)
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      for (const AdjEdge& e : g.Neighbors(u)) {
        if (dist[e.to] == -1) {
          dist[e.to] = k;
          next.push_back(e.to);
          ring.emplace_back(g.VertexLabel(e.to), e.label);
        } else if (dist[e.to] == k) {
          // Second entry point into an already-ringed vertex still shapes
          // the neighbourhood; record the (label, edge) pair as well.
          ring.emplace_back(g.VertexLabel(e.to), e.label);
        }
      }
    }
    std::sort(ring.begin(), ring.end());
    sig += StrFormat("|s%d:", k);
    for (const auto& [vl, el] : ring) sig += StrFormat("(%u,%u)", vl, el);
    frontier = std::move(next);
  }
  return sig;
}

bool IsModificationCenter(const Graph& g, uint32_t center, int hops) {
  std::set<std::string> seen;
  for (const AdjEdge& e : g.Neighbors(center)) {
    if (!seen.insert(KHopSignature(g, e.to, hops)).second) return false;
  }
  return true;
}

std::vector<uint32_t> FindModificationCenters(const Graph& g, size_t min_degree,
                                              int hops) {
  std::vector<uint32_t> centers;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) >= min_degree && IsModificationCenter(g, v, hops)) {
      centers.push_back(v);
    }
  }
  return centers;
}

}  // namespace gbda
