#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/known_ged_family.h"
#include "graph/graph_database.h"

namespace gbda {

/// Blueprint of a benchmark dataset. The offline datasets of the paper (IAM
/// AIDS / Fingerprint / GREC and NCI AASD) are not downloadable in this
/// environment, so each profile reproduces the corresponding row of
/// Table III — graph counts, maximal sizes, average degree, label alphabet
/// sizes and the scale-free property — with synthetic graphs organised as
/// many small known-GED families (Appendix I):
///
///  - graphs are grouped in size rungs; each rung hosts several families of
///    roughly `family_size` members derived from one template, so every
///    same-family pair has exact known GED in [0, 2 * max_modifications];
///  - every family carries a chain of `marker_count()` vertices with
///    family-unique vertex and edge labels, so every cross-family pair
///    satisfies GED >= 2 * marker_count() > certified_tau by the label
///    multiset lower bound — a certified negative for every threshold used
///    in the experiments.
///
/// This replaces the paper's (unstated) real-data ground truth with provably
/// correct labels while keeping true answer sets small, as in real search
/// workloads; see docs/ARCHITECTURE.md.
struct DatasetProfile {
  std::string name;
  std::vector<size_t> rung_sizes;        // member |V| per rung, descending
  std::vector<size_t> graphs_per_rung;   // database members per rung
  std::vector<size_t> queries_per_rung;  // query members per rung
  /// Core label alphabets (the |L_V| / |L_E| reported in Table III and used
  /// by the probabilistic model; family marker labels come on top and are
  /// excluded from the model via GbdaIndexOptions overrides).
  size_t num_vertex_labels = 8;
  size_t num_edge_labels = 3;
  bool scale_free = true;
  double target_avg_degree = 2.0;
  /// Preferential-attachment edges per vertex beyond the spanning tree
  /// (scale-free rungs only; 0 keeps the BA-tree average degree of ~2).
  size_t edges_per_vertex = 0;
  size_t max_modifications = 10;  // same-family GED spans [0, 2x this]
  /// Fraction of modifications that delete the pool edge (vs relabel it).
  double delete_fraction = 0.25;
  /// Preferred modification centers per family (the generator keeps fewer on
  /// small rungs).
  size_t num_centers = 4;
  /// Target database members per family.
  size_t family_size = 16;
  /// Largest threshold the ground truth certifies: cross-family pairs are
  /// guaranteed GED > certified_tau.
  int64_t certified_tau = 10;
  int signature_hops = 2;
  uint64_t seed = 7;

  /// Marker-chain length: 2 * marker_count() >= certified_tau + 1.
  size_t marker_count() const {
    return static_cast<size_t>(certified_tau / 2 + 1);
  }

  /// Alias kept for the evaluation layer: thresholds up to this value have
  /// certified ground truth.
  int64_t certified_gap() const { return certified_tau; }
};

/// Table III profiles. `scale` in (0, 1] shrinks graph and query counts for
/// quick benchmark runs; 1.0 reproduces the paper's counts.
DatasetProfile AidsProfile(double scale = 1.0);
DatasetProfile FingerprintProfile(double scale = 1.0);
DatasetProfile GrecProfile(double scale = 1.0);
DatasetProfile AasdProfile(double scale = 0.1);

/// Synthetic Syn-1 (scale-free) / Syn-2 (random) profiles with the given
/// subset sizes and graphs/queries per subset (paper: sizes 1K..100K, 500
/// graphs and 10 queries per subset, thresholds up to 30).
DatasetProfile SynProfile(bool scale_free, std::vector<size_t> subset_sizes,
                          size_t graphs_per_subset, size_t queries_per_subset);

/// A generated dataset plus exact ground truth.
struct GeneratedDataset {
  DatasetProfile profile;
  GraphDatabase db;
  std::vector<Graph> queries;
  std::vector<uint32_t> graph_rung;    // db graph id -> rung
  std::vector<uint32_t> query_rung;    // query idx -> rung
  std::vector<uint32_t> graph_family;  // db graph id -> global family id
  std::vector<uint32_t> query_family;  // query idx -> global family id
  /// Per db graph / query: the pool-edge state vector within its family.
  std::vector<std::vector<PoolEdgeState>> graph_states;
  std::vector<std::vector<PoolEdgeState>> query_states;
  size_t num_families = 0;

  /// Exact GED when query q and graph g share a family; -1 for certified far
  /// pairs (GED > profile.certified_tau).
  int64_t KnownGedOrFar(size_t query_idx, size_t graph_id) const;

  /// The true answer set of query q at threshold tau (tau must not exceed
  /// certified_tau).
  std::vector<size_t> TrueMatches(size_t query_idx, int64_t tau) const;
};

/// Instantiates a profile. Deterministic in profile.seed.
Result<GeneratedDataset> GenerateDataset(const DatasetProfile& profile);

}  // namespace gbda
