#include "datagen/dataset_profiles.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gbda {
namespace {

size_t Scaled(size_t count, double scale) {
  return std::max<size_t>(2, static_cast<size_t>(std::llround(
                                 static_cast<double>(count) * scale)));
}

/// Splits `total` into `parts` roughly equal chunks.
std::vector<size_t> SplitEvenly(size_t total, size_t parts) {
  std::vector<size_t> out(parts, total / parts);
  for (size_t i = 0; i < total % parts; ++i) ++out[i];
  return out;
}

/// Descending size ladder from `max_size` with the given gap.
std::vector<size_t> SizeLadder(size_t max_size, size_t gap, size_t min_size,
                               size_t max_rungs) {
  std::vector<size_t> sizes;
  for (size_t s = max_size; s >= min_size && sizes.size() < max_rungs;
       s -= gap) {
    sizes.push_back(s);
    if (s < min_size + gap) break;
  }
  return sizes;
}

}  // namespace

DatasetProfile AidsProfile(double scale) {
  DatasetProfile p;
  p.name = "AIDS";
  p.rung_sizes = SizeLadder(/*max_size=*/95, /*gap=*/12, /*min_size=*/20, 7);
  p.graphs_per_rung = SplitEvenly(Scaled(1896, scale), p.rung_sizes.size());
  p.queries_per_rung = SplitEvenly(Scaled(100, scale), p.rung_sizes.size());
  p.num_vertex_labels = 42;  // atom types occurring in the AIDS screen
  p.num_edge_labels = 3;     // single / double / aromatic bonds
  p.scale_free = true;
  p.target_avg_degree = 2.1;
  p.max_modifications = 12;
  p.num_centers = 8;
  p.family_size = 16;
  p.certified_tau = 10;
  p.seed = 0xA1D5;
  return p;
}

DatasetProfile FingerprintProfile(double scale) {
  DatasetProfile p;
  p.name = "Fingerprint";
  p.rung_sizes = {26, 20};
  p.graphs_per_rung = SplitEvenly(Scaled(2159, scale), p.rung_sizes.size());
  p.queries_per_rung = SplitEvenly(Scaled(114, scale), p.rung_sizes.size());
  p.num_vertex_labels = 8;  // discretised ridge orientations
  p.num_edge_labels = 4;
  p.scale_free = true;
  p.target_avg_degree = 1.7;
  p.max_modifications = 8;
  p.num_centers = 4;
  p.family_size = 14;
  p.certified_tau = 10;
  p.seed = 0xF1A6;
  return p;
}

DatasetProfile GrecProfile(double scale) {
  DatasetProfile p;
  p.name = "GREC";
  p.rung_sizes = {24, 18};
  p.graphs_per_rung = SplitEvenly(Scaled(1045, scale), p.rung_sizes.size());
  p.queries_per_rung = SplitEvenly(Scaled(55, scale), p.rung_sizes.size());
  p.num_vertex_labels = 20;  // symbol primitives
  p.num_edge_labels = 6;
  p.scale_free = true;
  p.target_avg_degree = 2.1;
  p.max_modifications = 8;
  p.num_centers = 4;
  p.family_size = 14;
  p.certified_tau = 10;
  p.seed = 0x63EC;
  return p;
}

DatasetProfile AasdProfile(double scale) {
  DatasetProfile p;
  p.name = "AASD";
  p.rung_sizes = SizeLadder(/*max_size=*/93, /*gap=*/12, /*min_size=*/20, 7);
  p.graphs_per_rung = SplitEvenly(Scaled(37995, scale), p.rung_sizes.size());
  // AASD's |Q| is only 100 for 38K graphs; keep queries proportionally
  // larger at small scales but never above the paper's count.
  p.queries_per_rung = SplitEvenly(Scaled(100, std::min(1.0, scale * 10.0)),
                                   p.rung_sizes.size());
  p.num_vertex_labels = 42;
  p.num_edge_labels = 3;
  p.scale_free = true;
  p.target_avg_degree = 2.1;
  p.max_modifications = 12;
  p.num_centers = 8;
  p.family_size = 16;
  p.certified_tau = 10;
  p.seed = 0xAA5D;
  return p;
}

DatasetProfile SynProfile(bool scale_free, std::vector<size_t> subset_sizes,
                          size_t graphs_per_subset, size_t queries_per_subset) {
  DatasetProfile p;
  p.name = scale_free ? "Syn-1" : "Syn-2";
  std::sort(subset_sizes.begin(), subset_sizes.end(), std::greater<size_t>());
  p.rung_sizes = std::move(subset_sizes);
  p.graphs_per_rung.assign(p.rung_sizes.size(), graphs_per_subset);
  p.queries_per_rung.assign(p.rung_sizes.size(), queries_per_subset);
  p.num_vertex_labels = 10;
  p.num_edge_labels = 5;
  p.scale_free = scale_free;
  p.target_avg_degree = scale_free ? 9.6 : 9.4;
  p.edges_per_vertex = 4;  // spanning tree + 4 preferential edges -> d ~ 9.x
  p.max_modifications = 30;  // thresholds up to 30 in Figures 8-9 / 31-42
  p.num_centers = 15;
  p.family_size = 25;
  p.certified_tau = 30;
  p.seed = scale_free ? 0x5151 : 0x5252;
  return p;
}

Result<GeneratedDataset> GenerateDataset(const DatasetProfile& profile) {
  if (profile.rung_sizes.empty()) {
    return Status::InvalidArgument("profile has no rungs");
  }
  if (profile.rung_sizes.size() != profile.graphs_per_rung.size() ||
      profile.rung_sizes.size() != profile.queries_per_rung.size()) {
    return Status::InvalidArgument("profile rung vectors disagree in length");
  }
  const size_t markers = profile.marker_count();
  for (size_t n : profile.rung_sizes) {
    if (n < markers + 6) {
      return Status::InvalidArgument(StrFormat(
          "rung size %zu too small for %zu marker vertices plus a core", n,
          markers));
    }
  }

  GeneratedDataset ds;
  ds.profile = profile;
  // Shared core alphabets, interned up front so core ids are stable; family
  // marker labels are interned as families are created.
  ds.db.vertex_labels().InternNumbered(profile.num_vertex_labels, "V");
  ds.db.edge_labels().InternNumbered(profile.num_edge_labels, "E");

  Rng rng(profile.seed);
  uint32_t family_id = 0;
  for (size_t r = 0; r < profile.rung_sizes.size(); ++r) {
    const size_t n = profile.rung_sizes[r];
    const size_t core = n - markers;
    const size_t num_families = std::max<size_t>(
        1, (profile.graphs_per_rung[r] + profile.family_size / 2) /
               profile.family_size);
    const std::vector<size_t> fam_graphs =
        SplitEvenly(profile.graphs_per_rung[r], num_families);
    const std::vector<size_t> fam_queries =
        SplitEvenly(profile.queries_per_rung[r], num_families);

    for (size_t f = 0; f < num_families; ++f, ++family_id) {
      if (fam_graphs[f] == 0 && fam_queries[f] == 0) continue;
      FamilyOptions fam;
      fam.generator.num_vertices = core;
      fam.generator.num_vertex_labels = profile.num_vertex_labels;
      fam.generator.num_edge_labels = profile.num_edge_labels;
      fam.generator.scale_free = profile.scale_free;
      fam.generator.edges_per_vertex = profile.edges_per_vertex;
      if (!profile.scale_free) {
        const double extra = std::max(
            0.0, profile.target_avg_degree * static_cast<double>(core) / 2.0 -
                     static_cast<double>(core - 1));
        fam.generator.extra_edges = static_cast<size_t>(extra);
      }
      fam.num_members = fam_graphs[f] + fam_queries[f];
      fam.max_modifications = profile.max_modifications;
      fam.delete_fraction = profile.delete_fraction;
      fam.signature_hops = profile.signature_hops;
      fam.num_centers = profile.num_centers;
      fam.center_min_degree = 2;
      fam.num_marker_vertices = markers;
      fam.marker_vertex_label = ds.db.vertex_labels().Intern(
          StrFormat("M%u", family_id));
      fam.marker_edge_label =
          ds.db.edge_labels().Intern(StrFormat("m%u", family_id));

      Result<KnownGedFamily> family = GenerateKnownGedFamily(fam, &rng);
      if (!family.ok()) {
        return Status(family.status().code(),
                      StrFormat("rung %zu family %zu (|V|=%zu): %s", r, f, n,
                                family.status().message().c_str()));
      }

      // The first fam_graphs[f] members feed the database; the rest are
      // queries.
      for (size_t m = 0; m < family->members.size(); ++m) {
        if (m < fam_graphs[f]) {
          ds.db.Add(std::move(family->members[m]));
          ds.graph_rung.push_back(static_cast<uint32_t>(r));
          ds.graph_family.push_back(family_id);
          ds.graph_states.push_back(std::move(family->member_states[m]));
        } else {
          ds.queries.push_back(std::move(family->members[m]));
          ds.query_rung.push_back(static_cast<uint32_t>(r));
          ds.query_family.push_back(family_id);
          ds.query_states.push_back(std::move(family->member_states[m]));
        }
      }
    }
  }
  ds.num_families = family_id;
  return ds;
}

int64_t GeneratedDataset::KnownGedOrFar(size_t query_idx,
                                        size_t graph_id) const {
  if (query_family[query_idx] != graph_family[graph_id]) return -1;
  return StateHammingDistance(query_states[query_idx], graph_states[graph_id]);
}

std::vector<size_t> GeneratedDataset::TrueMatches(size_t query_idx,
                                                  int64_t tau) const {
  std::vector<size_t> matches;
  for (size_t g = 0; g < db.size(); ++g) {
    const int64_t ged = KnownGedOrFar(query_idx, g);
    if (ged >= 0 && ged <= tau) matches.push_back(g);
  }
  return matches;
}

}  // namespace gbda
