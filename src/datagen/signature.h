#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gbda {

/// The k-hop vertex signature of Appendix I: s0 is the vertex's own label,
/// and s_k (k >= 1) is the sorted multiset of (vertex label, edge label)
/// pairs of the k-hop neighbourhood, where the edge label is the one on the
/// edge entering the ring. Two vertices with different signatures cannot be
/// exchanged by any automorphism that fixes the rest of the graph, which is
/// what makes modification centers safe.
std::string KHopSignature(const Graph& g, uint32_t vertex, int hops);

/// True when the signatures of all of `center`'s neighbours are pairwise
/// distinct — the sufficient condition of Appendix I for `center` to be a
/// modification center.
bool IsModificationCenter(const Graph& g, uint32_t center, int hops);

/// All modification centers of `g` with degree at least `min_degree`,
/// in ascending order.
std::vector<uint32_t> FindModificationCenters(const Graph& g, size_t min_degree,
                                              int hops);

}  // namespace gbda
