#include "datagen/known_ged_family.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

#include "common/string_util.h"
#include "datagen/signature.h"

namespace gbda {

int64_t SymmetricDifferenceSize(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  int64_t diff = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++diff;
      ++i;
    } else if (a[i] > b[j]) {
      ++diff;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  diff += static_cast<int64_t>((a.size() - i) + (b.size() - j));
  return diff;
}

int64_t StateHammingDistance(const std::vector<PoolEdgeState>& a,
                             const std::vector<PoolEdgeState>& b) {
  int64_t diff = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) ++diff;
  }
  diff += static_cast<int64_t>(std::max(a.size(), b.size()) - n);
  return diff;
}

int64_t KnownGedFamily::KnownGed(size_t i, size_t j) const {
  return StateHammingDistance(member_states[i], member_states[j]);
}

namespace {

/// Marks every vertex within `radius` hops of `start` in `mask`.
void MarkBall(const Graph& g, uint32_t start, int radius,
              std::vector<char>* mask) {
  std::vector<int> dist(g.num_vertices(), -1);
  std::queue<uint32_t> q;
  dist[start] = 0;
  q.push(start);
  (*mask)[start] = 1;
  while (!q.empty()) {
    const uint32_t v = q.front();
    q.pop();
    if (dist[v] == radius) continue;
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (dist[e.to] == -1) {
        dist[e.to] = dist[v] + 1;
        (*mask)[e.to] = 1;
        q.push(e.to);
      }
    }
  }
}

/// Raises the degree of `center` to `target` by connecting it to random
/// vertices outside `forbidden` (the 2-balls of other centers).
bool BoostCenterDegree(Graph* g, uint32_t center, size_t target,
                       const std::vector<char>& forbidden,
                       size_t num_edge_labels, Rng* rng) {
  size_t guard = 0;
  while (g->Degree(center) < target) {
    if (++guard > 200 * target + 2000) return false;
    const uint32_t other = static_cast<uint32_t>(
        rng->UniformInt(0, static_cast<int64_t>(g->num_vertices()) - 1));
    if (other == center || forbidden[other] || g->HasEdge(center, other)) {
      continue;
    }
    const LabelId label = static_cast<LabelId>(
        rng->UniformInt(1, static_cast<int64_t>(num_edge_labels)));
    if (!g->AddEdge(center, other, label).ok()) return false;
  }
  return true;
}

/// Rotation within [1, num_labels]: deterministic label change used by the
/// modification step; guaranteed different from the input when num_labels>=2.
LabelId RotateLabel(LabelId label, size_t num_labels) {
  return static_cast<LabelId>(label % num_labels + 1);
}

/// log2 of the number of subsets of size <= k from a pool of p items,
/// saturated; used for the capacity check.
double SubsetCapacity(size_t pool, size_t k) {
  double capacity = 0.0;
  double binom = 1.0;
  for (size_t i = 0; i <= std::min(pool, k) && capacity < 1e18; ++i) {
    capacity += binom;
    binom *= static_cast<double>(pool - i) / static_cast<double>(i + 1);
  }
  return capacity;
}

}  // namespace

Result<KnownGedFamily> GenerateKnownGedFamily(const FamilyOptions& options,
                                              Rng* rng) {
  if (options.generator.num_edge_labels < 2) {
    return Status::InvalidArgument(
        "family generation needs at least two edge labels to relabel");
  }
  if (options.num_centers == 0) {
    return Status::InvalidArgument("family generation needs >= 1 center");
  }
  if (options.max_modifications == 0) {
    return Status::InvalidArgument("modification budget is zero");
  }
  if (options.num_marker_vertices > 0 &&
      (options.marker_vertex_label == kVirtualLabel ||
       options.marker_edge_label == kVirtualLabel)) {
    return Status::InvalidArgument(
        "marker vertices need non-virtual marker labels");
  }
  // Quick impossibility check: even a single center adjacent to every other
  // vertex cannot host more subsets than C(n-1, <= max_mod).
  const size_t n = options.generator.num_vertices;
  if (SubsetCapacity(n > 0 ? n - 1 : 0,
                     std::min(options.max_modifications, n > 0 ? n - 1 : 0)) <
      static_cast<double>(options.num_members)) {
    return Status::InvalidArgument(StrFormat(
        "a %zu-vertex template cannot host %zu distinct members", n,
        options.num_members));
  }

  for (size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    Result<Graph> tmpl_result = GenerateConnectedGraph(options.generator, rng);
    if (!tmpl_result.ok()) return tmpl_result.status();
    Graph tmpl = std::move(*tmpl_result);

    // Identity marker chain: head attaches to vertex 0, the rest form a
    // path; all vertices and edges carry the family's marker labels.
    const uint32_t num_core = static_cast<uint32_t>(tmpl.num_vertices());
    for (size_t m = 0; m < options.num_marker_vertices; ++m) {
      const uint32_t v = tmpl.AddVertex(options.marker_vertex_label);
      const uint32_t prev = m == 0 ? 0 : v - 1;
      GBDA_RETURN_IF_ERROR(tmpl.AddEdge(prev, v, options.marker_edge_label));
    }

    // Candidate order: descending degree for cheap boosting, index tiebreak.
    // Marker vertices are excluded from center duty.
    std::vector<uint32_t> candidates(num_core);
    std::iota(candidates.begin(), candidates.end(), 0u);
    std::sort(candidates.begin(), candidates.end(), [&](uint32_t a, uint32_t b) {
      if (tmpl.Degree(a) != tmpl.Degree(b)) return tmpl.Degree(a) > tmpl.Degree(b);
      return a < b;
    });

    // Phase 1: select up to num_centers separated centers at the base degree.
    // Marker vertices start forbidden so boosts never touch the chain.
    std::vector<uint32_t> centers;
    std::vector<char> forbidden(tmpl.num_vertices(), 0);
    for (uint32_t v = num_core; v < tmpl.num_vertices(); ++v) forbidden[v] = 1;
    for (uint32_t cand : candidates) {
      if (centers.size() == options.num_centers) break;
      if (forbidden[cand]) continue;
      Graph trial = tmpl;
      if (!BoostCenterDegree(&trial, cand, options.center_min_degree, forbidden,
                             options.generator.num_edge_labels, rng)) {
        continue;
      }
      if (!IsModificationCenter(trial, cand, options.signature_hops)) continue;
      tmpl = std::move(trial);
      centers.push_back(cand);
      // Ball of radius 2 keeps later centers at distance >= 3.
      MarkBall(tmpl, cand, 2, &forbidden);
    }
    if (centers.empty()) continue;

    // Phase 2: grow center degrees until the subset capacity covers the
    // requested member count (fewer centers than preferred is fine as long
    // as the pool is big enough).
    auto pool_size = [&]() {
      size_t pool = 0;
      for (uint32_t c : centers) pool += tmpl.Degree(c);
      return pool;
    };
    auto capacity_ok = [&]() {
      const size_t pool = pool_size();
      return SubsetCapacity(pool, std::min(options.max_modifications, pool)) >=
             1.2 * static_cast<double>(options.num_members) + 2.0;
    };
    bool stuck = false;
    while (!capacity_ok() && !stuck) {
      // Grow the smallest center; retry with a fresh template if no center
      // can grow while keeping its signature property.
      std::sort(centers.begin(), centers.end(), [&](uint32_t a, uint32_t b) {
        return tmpl.Degree(a) < tmpl.Degree(b);
      });
      stuck = true;
      for (uint32_t c : centers) {
        Graph trial = tmpl;
        if (!BoostCenterDegree(&trial, c, trial.Degree(c) + 1, forbidden,
                               options.generator.num_edge_labels, rng)) {
          continue;
        }
        if (!IsModificationCenter(trial, c, options.signature_hops)) continue;
        tmpl = std::move(trial);
        // The new neighbour extends c's 2-ball; refresh the mask so later
        // boosts of other centers keep the pairwise distance >= 3.
        MarkBall(tmpl, c, 2, &forbidden);
        stuck = false;
        break;
      }
    }
    if (!capacity_ok()) continue;

    // The modification pool: center edges in deterministic order. Edges with
    // labels outside the core alphabet (the vertex-0 marker attachment, when
    // vertex 0 is a center) stay out of the pool so marker labels are never
    // rotated.
    KnownGedFamily family;
    family.centers = centers;
    for (uint32_t c : centers) {
      for (const AdjEdge& e : tmpl.Neighbors(c)) {
        if (e.label >= 1 &&
            e.label <= static_cast<LabelId>(options.generator.num_edge_labels)) {
          family.edge_pool.emplace_back(c, e.to);
        }
      }
    }
    const size_t pool = family.edge_pool.size();
    const size_t mod_cap = std::min(options.max_modifications, pool);

    // Distinct member state vectors; the template is member 0 (all original).
    std::set<std::vector<PoolEdgeState>> states;
    states.insert(std::vector<PoolEdgeState>(pool, PoolEdgeState::kOriginal));
    size_t guard = 0;
    while (states.size() < options.num_members) {
      if (++guard > 1000 * options.num_members + 10000) break;
      const size_t size =
          static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(mod_cap)));
      std::vector<size_t> picks = rng->SampleWithoutReplacement(pool, size);
      std::vector<PoolEdgeState> state(pool, PoolEdgeState::kOriginal);
      for (size_t idx : picks) {
        state[idx] = rng->Bernoulli(options.delete_fraction)
                         ? PoolEdgeState::kDeleted
                         : PoolEdgeState::kRelabeled;
      }
      states.insert(std::move(state));
    }
    if (states.size() < options.num_members) continue;

    for (const std::vector<PoolEdgeState>& state : states) {
      Graph member = tmpl;
      for (size_t idx = 0; idx < pool; ++idx) {
        const auto [c, nb] = family.edge_pool[idx];
        switch (state[idx]) {
          case PoolEdgeState::kOriginal:
            break;
          case PoolEdgeState::kRelabeled: {
            const LabelId old_label = member.EdgeLabel(c, nb).value();
            GBDA_RETURN_IF_ERROR(member.RelabelEdge(
                c, nb,
                RotateLabel(old_label, options.generator.num_edge_labels)));
            break;
          }
          case PoolEdgeState::kDeleted:
            GBDA_RETURN_IF_ERROR(member.RemoveEdge(c, nb));
            break;
        }
      }
      family.members.push_back(std::move(member));
      family.member_states.push_back(state);
      if (family.members.size() == options.num_members) break;
    }
    return family;
  }
  return Status::Internal(StrFormat(
      "no template with %zu valid modification centers after %zu attempts",
      options.num_centers, options.max_attempts));
}

}  // namespace gbda
