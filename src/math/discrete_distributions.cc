#include "math/discrete_distributions.h"

#include <cmath>

#include "math/log_combinatorics.h"

namespace gbda {

double LogHypergeometricPmf(int64_t x, int64_t m_total, int64_t k_marked,
                            int64_t n_draws) {
  if (x < 0 || x > k_marked || x > n_draws) return NegInf();
  if (n_draws - x > m_total - k_marked) return NegInf();
  if (n_draws <= 256) {
    // Product form: C(N,x) * prod K-i * prod (M-K)-j / prod M-t. Each factor
    // is O(1) in log space, so the result keeps full double precision even
    // when M ~ 5e9 (where the lgamma route loses ~1e-5 relative accuracy).
    double log_p = LogBinomial(n_draws, x);
    for (int64_t i = 0; i < x; ++i) {
      log_p += std::log(static_cast<double>(k_marked - i));
    }
    for (int64_t j = 0; j < n_draws - x; ++j) {
      log_p += std::log(static_cast<double>(m_total - k_marked - j));
    }
    for (int64_t t = 0; t < n_draws; ++t) {
      log_p -= std::log(static_cast<double>(m_total - t));
    }
    return log_p;
  }
  return LogBinomial(k_marked, x) + LogBinomial(m_total - k_marked, n_draws - x) -
         LogBinomial(m_total, n_draws);
}

double HypergeometricPmf(int64_t x, int64_t m_total, int64_t k_marked,
                         int64_t n_draws) {
  return ExpSafe(LogHypergeometricPmf(x, m_total, k_marked, n_draws));
}

double LogBinomialPmfFromLogs(int64_t k, int64_t n, double log_p,
                              double log_1mp) {
  if (k < 0 || k > n) return NegInf();
  return LogBinomial(n, k) + static_cast<double>(k) * log_p +
         static_cast<double>(n - k) * log_1mp;
}

}  // namespace gbda
