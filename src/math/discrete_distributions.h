#pragma once

#include <cstdint>

namespace gbda {

/// Hypergeometric pmf H(x; M, K, N) = C(K,x) C(M-K, N-x) / C(M, N):
/// the probability of drawing exactly `x` marked items when drawing `N`
/// without replacement from `M` items of which `K` are marked (Eq. 32 in the
/// paper). Returns 0 outside the support.
double HypergeometricPmf(int64_t x, int64_t m_total, int64_t k_marked,
                         int64_t n_draws);

/// Natural log of the hypergeometric pmf; NegInf() outside the support.
double LogHypergeometricPmf(int64_t x, int64_t m_total, int64_t k_marked,
                            int64_t n_draws);

/// Binomial pmf C(n,k) p^k (1-p)^{n-k} parameterised by ln p and ln(1-p) so it
/// stays usable when p is within 1e-300 of 0 or 1 (Omega3 has p = (D-1)/D with
/// D astronomically large). NegInf() outside the support.
double LogBinomialPmfFromLogs(int64_t k, int64_t n, double log_p,
                              double log_1mp);

}  // namespace gbda
