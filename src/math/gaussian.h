#pragma once

namespace gbda {

/// Probability density of N(mean, stddev^2) at x. stddev must be positive.
double NormalPdf(double x, double mean, double stddev);

/// Log-density of N(mean, stddev^2) at x.
double NormalLogPdf(double x, double mean, double stddev);

/// Cumulative distribution of N(mean, stddev^2) at x (erf-based).
double NormalCdf(double x, double mean, double stddev);

/// P[lo <= X <= hi] for X ~ N(mean, stddev^2). Used for the continuity
/// correction of Eq. 14 with [phi - 0.5, phi + 0.5].
double NormalIntervalProb(double lo, double hi, double mean, double stddev);

}  // namespace gbda
