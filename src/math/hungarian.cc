#include "math/hungarian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace gbda {

Result<AssignmentResult> SolveAssignment(const DenseMatrix& cost) {
  if (cost.rows() == 0) return Status::InvalidArgument("assignment: empty matrix");
  if (!cost.IsSquare()) {
    return Status::InvalidArgument("assignment: matrix must be square");
  }
  const int n = static_cast<int>(cost.rows());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Kuhn-Munkres with row/column potentials; 1-based auxiliary arrays.
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(n) + 1, 0);  // column -> row
  std::vector<int> way(static_cast<size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(n) + 1, 0);
    do {
      used[static_cast<size_t>(j0)] = 1;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost.At(static_cast<size_t>(i0) - 1, static_cast<size_t>(j) - 1) -
                           u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(static_cast<size_t>(n), 0);
  for (int j = 1; j <= n; ++j) {
    result.row_to_col[static_cast<size_t>(match[static_cast<size_t>(j)]) - 1] =
        static_cast<size_t>(j) - 1;
  }
  for (int r = 0; r < n; ++r) {
    result.cost += cost.At(static_cast<size_t>(r), result.row_to_col[static_cast<size_t>(r)]);
  }
  return result;
}

Result<AssignmentResult> SolveAssignmentGreedySort(const DenseMatrix& cost) {
  if (cost.rows() == 0) return Status::InvalidArgument("assignment: empty matrix");
  if (!cost.IsSquare()) {
    return Status::InvalidArgument("assignment: matrix must be square");
  }
  const size_t n = cost.rows();
  std::vector<size_t> cells(n * n);
  std::iota(cells.begin(), cells.end(), size_t{0});
  std::sort(cells.begin(), cells.end(), [&](size_t a, size_t b) {
    const double ca = cost.data()[a];
    const double cb = cost.data()[b];
    if (ca != cb) return ca < cb;
    return a < b;  // deterministic tie-break
  });

  AssignmentResult result;
  result.row_to_col.assign(n, n);  // n = unassigned sentinel
  std::vector<char> row_used(n, 0), col_used(n, 0);
  size_t assigned = 0;
  for (size_t cell : cells) {
    const size_t r = cell / n;
    const size_t c = cell % n;
    if (row_used[r] || col_used[c]) continue;
    row_used[r] = col_used[c] = 1;
    result.row_to_col[r] = c;
    result.cost += cost.At(r, c);
    if (++assigned == n) break;
  }
  return result;
}

}  // namespace gbda
