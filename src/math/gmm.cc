#include "math/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/gaussian.h"
#include "math/log_combinatorics.h"

namespace gbda {
namespace {

/// k-means++ seeding: first centre uniform, later centres proportional to the
/// squared distance to the nearest chosen centre.
std::vector<double> KMeansPlusPlusCentres(const std::vector<double>& data,
                                          int k, Rng* rng) {
  std::vector<double> centres;
  centres.reserve(static_cast<size_t>(k));
  centres.push_back(
      data[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(data.size()) - 1))]);
  std::vector<double> d2(data.size());
  while (centres.size() < static_cast<size_t>(k)) {
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centres) {
        const double d = data[i] - c;
        best = std::min(best, d * d);
      }
      d2[i] = best;
    }
    const size_t pick = rng->WeightedIndex(d2);
    if (pick >= data.size()) {
      // All points coincide with existing centres; duplicate one.
      centres.push_back(centres.back());
    } else {
      centres.push_back(data[pick]);
    }
  }
  return centres;
}

}  // namespace

Result<GaussianMixture> GaussianMixture::Fit(const std::vector<double>& data,
                                             const GmmFitOptions& options) {
  if (data.empty()) return Status::InvalidArgument("GMM fit: empty data");
  if (options.num_components <= 0) {
    return Status::InvalidArgument("GMM fit: num_components must be positive");
  }
  const int k = options.num_components;
  const size_t n = data.size();

  double mean = 0.0;
  for (double x : data) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : data) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  const double global_sd =
      std::max(std::sqrt(var), options.stddev_floor);

  Rng rng(options.seed);
  GaussianMixture model;
  model.components_.resize(static_cast<size_t>(k));
  const std::vector<double> centres = KMeansPlusPlusCentres(data, k, &rng);
  for (int c = 0; c < k; ++c) {
    model.components_[static_cast<size_t>(c)] = {1.0 / k, centres[static_cast<size_t>(c)],
                                                 global_sd};
  }

  std::vector<double> resp(n * static_cast<size_t>(k));
  double prev_ll = -std::numeric_limits<double>::infinity();
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // E step: responsibilities via log-sum-exp.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double max_log = -std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const GmmComponent& gc = model.components_[static_cast<size_t>(c)];
        const double lw = gc.weight > 0.0 ? std::log(gc.weight) : NegInf();
        const double lp = lw + NormalLogPdf(data[i], gc.mean, gc.stddev);
        resp[i * static_cast<size_t>(k) + static_cast<size_t>(c)] = lp;
        max_log = std::max(max_log, lp);
      }
      double denom = 0.0;
      for (int c = 0; c < k; ++c) {
        denom += std::exp(resp[i * static_cast<size_t>(k) + static_cast<size_t>(c)] - max_log);
      }
      const double log_denom = max_log + std::log(denom);
      ll += log_denom;
      for (int c = 0; c < k; ++c) {
        double& r = resp[i * static_cast<size_t>(k) + static_cast<size_t>(c)];
        r = std::exp(r - log_denom);
      }
    }
    ll /= static_cast<double>(n);

    // M step.
    for (int c = 0; c < k; ++c) {
      double nk = 0.0, mu = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r = resp[i * static_cast<size_t>(k) + static_cast<size_t>(c)];
        nk += r;
        mu += r * data[i];
      }
      GmmComponent& gc = model.components_[static_cast<size_t>(c)];
      if (nk < 1e-12) {
        // Dead component: park it at the global statistics with zero weight.
        gc = {0.0, mean, global_sd};
        continue;
      }
      mu /= nk;
      double s2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r = resp[i * static_cast<size_t>(k) + static_cast<size_t>(c)];
        s2 += r * (data[i] - mu) * (data[i] - mu);
      }
      s2 /= nk;
      gc.weight = nk / static_cast<double>(n);
      gc.mean = mu;
      gc.stddev = std::max(std::sqrt(s2), options.stddev_floor);
    }

    if (ll - prev_ll < options.tolerance && iter > 0) {
      prev_ll = ll;
      ++iter;
      break;
    }
    prev_ll = ll;
  }
  model.log_likelihood_ = prev_ll;
  model.iterations_used_ = iter;

  // Renormalise weights against accumulated floating-point drift.
  double wsum = 0.0;
  for (const auto& gc : model.components_) wsum += gc.weight;
  if (wsum <= 0.0) return Status::Internal("GMM fit: all components died");
  for (auto& gc : model.components_) gc.weight /= wsum;
  return model;
}

Result<GaussianMixture> GaussianMixture::FromComponents(
    std::vector<GmmComponent> comps) {
  if (comps.empty()) {
    return Status::InvalidArgument("GMM: component list is empty");
  }
  double wsum = 0.0;
  for (const auto& c : comps) {
    if (c.stddev <= 0.0) {
      return Status::InvalidArgument("GMM: component stddev must be positive");
    }
    if (c.weight < 0.0) {
      return Status::InvalidArgument("GMM: component weight must be non-negative");
    }
    wsum += c.weight;
  }
  if (wsum <= 0.0) {
    return Status::InvalidArgument("GMM: weights sum to zero");
  }
  for (auto& c : comps) c.weight /= wsum;
  GaussianMixture model;
  model.components_ = std::move(comps);
  return model;
}

double GaussianMixture::Pdf(double x) const {
  double p = 0.0;
  for (const auto& c : components_) {
    if (c.weight > 0.0) p += c.weight * NormalPdf(x, c.mean, c.stddev);
  }
  return p;
}

double GaussianMixture::Cdf(double x) const {
  double p = 0.0;
  for (const auto& c : components_) {
    if (c.weight > 0.0) p += c.weight * NormalCdf(x, c.mean, c.stddev);
  }
  return p;
}

double GaussianMixture::IntervalProbability(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  double p = 0.0;
  for (const auto& c : components_) {
    if (c.weight > 0.0) {
      p += c.weight * NormalIntervalProb(lo, hi, c.mean, c.stddev);
    }
  }
  return p;
}

}  // namespace gbda
