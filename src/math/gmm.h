#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace gbda {

/// One Gaussian component of a mixture.
struct GmmComponent {
  double weight = 0.0;
  double mean = 0.0;
  double stddev = 1.0;
};

/// Tuning knobs for GaussianMixture::Fit. The defaults match the paper's
/// offline stage (Section V-B): a small fixed component count and a bounded
/// number of EM iterations.
struct GmmFitOptions {
  int num_components = 3;
  int max_iterations = 200;
  /// EM stops when the per-point log-likelihood improves by less than this.
  double tolerance = 1e-7;
  /// Lower bound applied to component standard deviations to avoid the
  /// classic EM singularity on repeated values. Interpreted as an absolute
  /// floor; GBD samples are integers so 0.25 keeps components meaningful.
  double stddev_floor = 0.25;
  uint64_t seed = 42;
};

/// One-dimensional Gaussian Mixture Model fitted with expectation-maximisation
/// (k-means++ initialisation). Models the prior distribution of GBD values
/// (Lambda2, Section V-B / Figure 5).
class GaussianMixture {
 public:
  /// Fits a mixture to `data`. Fails on empty data or non-positive K. When the
  /// data has fewer distinct values than K, surplus components collapse onto
  /// the floor variance and keep near-zero weight, which is harmless.
  static Result<GaussianMixture> Fit(const std::vector<double>& data,
                                     const GmmFitOptions& options);

  /// Constructs a mixture directly from components (weights must sum to ~1).
  static Result<GaussianMixture> FromComponents(std::vector<GmmComponent> comps);

  double Pdf(double x) const;
  double Cdf(double x) const;

  /// P[lo <= X <= hi] under the mixture — the continuity-corrected mass of
  /// Eq. 14 when called with [phi - 0.5, phi + 0.5].
  double IntervalProbability(double lo, double hi) const;

  const std::vector<GmmComponent>& components() const { return components_; }

  /// Mean per-point log-likelihood achieved by the final EM iterate.
  double log_likelihood() const { return log_likelihood_; }

  int iterations_used() const { return iterations_used_; }

 private:
  std::vector<GmmComponent> components_;
  double log_likelihood_ = 0.0;
  int iterations_used_ = 0;
};

}  // namespace gbda
