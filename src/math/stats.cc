#include "math/stats.h"

#include <algorithm>
#include <cmath>

namespace gbda {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - mu) * (x - mu);
  return s / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(SampleVariance(xs)); }

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

std::map<int64_t, size_t> IntegerHistogram(const std::vector<int64_t>& xs) {
  std::map<int64_t, size_t> hist;
  for (int64_t x : xs) ++hist[x];
  return hist;
}

Result<RegressionFit> LinearRegression(const std::vector<double>& x,
                                       const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("regression: size mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("regression: need at least two points");
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) {
    return Status::InvalidArgument("regression: x values are constant");
  }
  RegressionFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

Result<PowerLawFit> FitPowerLaw(const std::map<int64_t, size_t>& degree_counts) {
  std::vector<double> log_k, log_p;
  size_t total = 0;
  for (const auto& [k, c] : degree_counts) {
    if (k >= 1) total += c;
  }
  if (total == 0) return Status::InvalidArgument("power law: no positive degrees");
  for (const auto& [k, c] : degree_counts) {
    if (k >= 1 && c > 0) {
      log_k.push_back(std::log(static_cast<double>(k)));
      log_p.push_back(std::log(static_cast<double>(c) / static_cast<double>(total)));
    }
  }
  if (log_k.size() < 3) {
    return Status::InvalidArgument("power law: need at least three degree values");
  }
  Result<RegressionFit> reg = LinearRegression(log_k, log_p);
  if (!reg.ok()) return reg.status();
  PowerLawFit fit;
  fit.exponent = -reg->slope;
  fit.r2 = reg->r2;
  fit.support = log_k.size();
  return fit;
}

bool LooksScaleFree(const std::map<int64_t, size_t>& degree_counts,
                    double min_exponent, double max_exponent, double min_r2) {
  Result<PowerLawFit> fit = FitPowerLaw(degree_counts);
  if (!fit.ok()) return false;
  return fit->exponent >= min_exponent && fit->exponent <= max_exponent &&
         fit->r2 >= min_r2;
}

}  // namespace gbda
