#pragma once

#include <cstdint>

namespace gbda {

/// Log-space combinatorics used throughout the probabilistic model.
///
/// The model of Section V manipulates binomial coefficients whose upper index
/// is C(|V'1|, 2) — up to ~5e9 for the 100K-vertex synthetic graphs — so every
/// quantity is kept as a natural logarithm and only ratios are exponentiated.
/// Continuous extensions (via lgamma) make Lambda1 differentiable in tau,
/// which the Jeffreys prior (Eq. 16) requires.

/// Negative infinity, the log of probability zero.
double NegInf();

/// ln(n!) with a cached table for small n and lgamma beyond.
double LogFactorial(int64_t n);

/// ln C(n, k) for integers; returns NegInf() when k < 0 or k > n.
double LogBinomial(int64_t n, int64_t k);

/// ln C(a, x) for real a >= x >= 0 via lgamma — the continuous extension used
/// to differentiate the model with respect to tau. Returns NegInf() outside
/// the domain.
double LogBinomialReal(double a, double x);

/// d/dx ln C(a, x) = psi(a - x + 1) - psi(x + 1), the derivative of the
/// continuous extension above.
double DLogBinomialDx(double a, double x);

/// n-th harmonic number H(n) = 1 + 1/2 + ... + 1/n; H(0) = 0. Cached for
/// small n, psi-based beyond.
double HarmonicNumber(int64_t n);

/// Digamma function psi(x) for x > 0 (recurrence + asymptotic series,
/// |error| < 1e-12 for x >= 6 after shifting).
double Digamma(double x);

/// Euler-Mascheroni constant.
inline constexpr double kEulerGamma = 0.5772156649015328606;

/// exp(x) that maps NegInf() to exactly 0.
double ExpSafe(double x);

/// ln(exp(a) + exp(b)) computed stably; either side may be NegInf().
double LogAdd(double a, double b);

}  // namespace gbda
