#include "math/gaussian.h"

#include <cmath>

namespace gbda {
namespace {
constexpr double kLogSqrt2Pi = 0.9189385332046727418;  // ln(sqrt(2*pi))
constexpr double kInvSqrt2 = 0.7071067811865475244;
}  // namespace

double NormalLogPdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) - kLogSqrt2Pi;
}

double NormalPdf(double x, double mean, double stddev) {
  return std::exp(NormalLogPdf(x, mean, stddev));
}

double NormalCdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc(-(x - mean) / stddev * kInvSqrt2);
}

double NormalIntervalProb(double lo, double hi, double mean, double stddev) {
  if (hi <= lo) return 0.0;
  return NormalCdf(hi, mean, stddev) - NormalCdf(lo, mean, stddev);
}

}  // namespace gbda
