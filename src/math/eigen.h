#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "math/dense_matrix.h"

namespace gbda {

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// `eigenvalues` are returned in descending order with matching columns in
/// `eigenvectors` (each inner vector is one eigenvector). Fails on non-square
/// input. O(n^3) per sweep; intended for matrices up to a few hundred rows
/// (tests and small seriation instances).
Status JacobiEigenSymmetric(const DenseMatrix& a,
                            std::vector<double>* eigenvalues,
                            std::vector<std::vector<double>>* eigenvectors,
                            int max_sweeps = 64, double tolerance = 1e-12);

/// Leading eigenpair of a symmetric operator given only a matrix-vector
/// product, via shifted power iteration (shift +1 breaks the bipartite
/// lambda/-lambda tie of adjacency matrices). Deterministic for a fixed seed.
/// Returns the eigenvalue; writes the unit eigenvector into `eigenvector`.
/// This is the O(n^2)-per-iteration kernel of the Graph Seriation baseline
/// (Robles-Kelly & Hancock), applied to sparse adjacency in O(|E|).
Result<double> PowerIterationLeading(
    const std::function<std::vector<double>(const std::vector<double>&)>& matvec,
    size_t n, std::vector<double>* eigenvector, int max_iterations = 300,
    double tolerance = 1e-10, uint64_t seed = 7);

}  // namespace gbda
