#pragma once

#include <vector>

#include "common/result.h"
#include "math/dense_matrix.h"

namespace gbda {

/// Solution of a linear sum assignment problem.
struct AssignmentResult {
  /// row_to_col[r] is the column assigned to row r.
  std::vector<size_t> row_to_col;
  /// Total cost of the optimal assignment.
  double cost = 0.0;
};

/// Exact minimum-cost assignment on a square cost matrix (Kuhn-Munkres with
/// potentials, O(n^3)). This is the solver behind the LSAP baseline of
/// Riesen & Bunke [11] and the branch-based GED lower bound of Zheng et
/// al. [15]. Fails on non-square or empty input.
Result<AssignmentResult> SolveAssignment(const DenseMatrix& cost);

/// Greedy suboptimal assignment: sort all cells ascending, take each cell
/// whose row and column are both free. O(n^2 log n^2). This is the assignment
/// rule of Greedy-Sort-GED (Riesen, Ferrer & Bunke [12]); its cost upper-
/// bounds the Hungarian optimum.
Result<AssignmentResult> SolveAssignmentGreedySort(const DenseMatrix& cost);

}  // namespace gbda
