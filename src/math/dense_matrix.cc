#include "math/dense_matrix.h"

#include <cmath>

namespace gbda {

std::vector<double> DenseMatrix::MatVec(const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double DenseMatrix::MaxOffDiagonal() const {
  double best = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      if (r != c) best = std::max(best, std::fabs(At(r, c)));
    }
  }
  return best;
}

}  // namespace gbda
