#pragma once

#include <cstddef>
#include <vector>

namespace gbda {

/// Minimal row-major dense matrix of doubles. Used for assignment cost
/// matrices (baselines) and small symmetric eigenproblems (seriation, tests).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }

  /// y = A * x. Requires x.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Maximum absolute off-diagonal element (Jacobi convergence criterion).
  double MaxOffDiagonal() const;

  bool IsSquare() const { return rows_ == cols_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gbda
