#include "math/log_combinatorics.h"

#include <cmath>
#include <limits>
#include <vector>

namespace gbda {
namespace {

constexpr int kFactorialCache = 4096;
constexpr int kHarmonicCache = 1 << 16;

const std::vector<double>& FactorialTable() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kFactorialCache);
    t[0] = 0.0;
    for (int i = 1; i < kFactorialCache; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

const std::vector<double>& HarmonicTable() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kHarmonicCache);
    t[0] = 0.0;
    for (int i = 1; i < kHarmonicCache; ++i) {
      t[i] = t[i - 1] + 1.0 / static_cast<double>(i);
    }
    return t;
  }();
  return table;
}

}  // namespace

double NegInf() { return -std::numeric_limits<double>::infinity(); }

double LogFactorial(int64_t n) {
  if (n < 0) return NegInf();
  if (n < kFactorialCache) return FactorialTable()[static_cast<size_t>(n)];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) return NegInf();
  if (k == 0 || k == n) return 0.0;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double LogBinomialReal(double a, double x) {
  if (x < 0.0 || x > a) return NegInf();
  return std::lgamma(a + 1.0) - std::lgamma(x + 1.0) - std::lgamma(a - x + 1.0);
}

double DLogBinomialDx(double a, double x) {
  return Digamma(a - x + 1.0) - Digamma(x + 1.0);
}

double HarmonicNumber(int64_t n) {
  if (n <= 0) return 0.0;
  if (n < kHarmonicCache) return HarmonicTable()[static_cast<size_t>(n)];
  return Digamma(static_cast<double>(n) + 1.0) + kEulerGamma;
}

double Digamma(double x) {
  // Shift to x >= 6 via psi(x) = psi(x+1) - 1/x, then the asymptotic series
  // psi(x) ~ ln x - 1/(2x) - sum B_{2k} / (2k x^{2k}).
  double acc = 0.0;
  while (x < 6.0) {
    acc -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  double series = std::log(x) - 0.5 * inv;
  series -= inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 -
            inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return acc + series;
}

double ExpSafe(double x) {
  if (std::isinf(x) && x < 0.0) return 0.0;
  return std::exp(x);
}

double LogAdd(double a, double b) {
  if (std::isinf(a) && a < 0.0) return b;
  if (std::isinf(b) && b < 0.0) return a;
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace gbda
