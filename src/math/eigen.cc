#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gbda {

Status JacobiEigenSymmetric(const DenseMatrix& a,
                            std::vector<double>* eigenvalues,
                            std::vector<std::vector<double>>* eigenvectors,
                            int max_sweeps, double tolerance) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("Jacobi: matrix must be square");
  }
  const size_t n = a.rows();
  DenseMatrix m = a;
  // v starts as identity and accumulates the rotations.
  DenseMatrix v(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (m.MaxOffDiagonal() < tolerance) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m.At(p, q);
        if (std::fabs(apq) < tolerance) continue;
        const double app = m.At(p, p);
        const double aqq = m.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m.At(k, p);
          const double mkq = m.At(k, q);
          m.At(k, p) = c * mkp - s * mkq;
          m.At(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m.At(p, k);
          const double mqk = m.At(q, k);
          m.At(p, k) = c * mpk - s * mqk;
          m.At(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return m.At(i, i) > m.At(j, j); });

  eigenvalues->resize(n);
  eigenvectors->assign(n, std::vector<double>(n));
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t col = order[rank];
    (*eigenvalues)[rank] = m.At(col, col);
    for (size_t k = 0; k < n; ++k) (*eigenvectors)[rank][k] = v.At(k, col);
  }
  return Status::OK();
}

Result<double> PowerIterationLeading(
    const std::function<std::vector<double>(const std::vector<double>&)>& matvec,
    size_t n, std::vector<double>* eigenvector, int max_iterations,
    double tolerance, uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("power iteration: empty operator");
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& xi : x) xi = rng.Uniform(0.1, 1.0);  // positive start helps Perron
  double norm = 0.0;
  for (double xi : x) norm += xi * xi;
  norm = std::sqrt(norm);
  for (auto& xi : x) xi /= norm;

  double lambda_shifted = 0.0;
  constexpr double kShift = 1.0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> y = matvec(x);
    for (size_t i = 0; i < n; ++i) y[i] += kShift * x[i];
    double ynorm = 0.0;
    for (double yi : y) ynorm += yi * yi;
    ynorm = std::sqrt(ynorm);
    if (ynorm == 0.0) {
      // The zero operator: every vector is an eigenvector with eigenvalue 0.
      *eigenvector = x;
      return 0.0 - kShift + kShift;  // eigenvalue of A is 0
    }
    double diff = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double xi_new = y[i] / ynorm;
      diff = std::max(diff, std::fabs(xi_new - x[i]));
      x[i] = xi_new;
    }
    lambda_shifted = ynorm;
    if (diff < tolerance) break;
  }
  *eigenvector = std::move(x);
  return lambda_shifted - kShift;
}

}  // namespace gbda
