#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"

namespace gbda {

double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
double SampleVariance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

/// Median (average of middle pair for even sizes). Copies and sorts.
double Median(std::vector<double> xs);

/// Integer histogram: value -> count.
std::map<int64_t, size_t> IntegerHistogram(const std::vector<int64_t>& xs);

/// Ordinary least squares y = slope*x + intercept with coefficient of
/// determination r2. Requires at least two points with distinct x.
struct RegressionFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
Result<RegressionFit> LinearRegression(const std::vector<double>& x,
                                       const std::vector<double>& y);

/// Power-law fit of a degree distribution: fits log p_k ~ -delta * log k over
/// degrees k >= 1 with nonzero counts. Used to testify the scale-free property
/// the way the paper does for Table III (degree law p_k ~ C k^-delta).
struct PowerLawFit {
  double exponent = 0.0;  // delta in p_k ~ k^-delta
  double r2 = 0.0;
  size_t support = 0;  // number of (k, p_k) points used
};
Result<PowerLawFit> FitPowerLaw(const std::map<int64_t, size_t>& degree_counts);

/// Heuristic scale-free test: power-law exponent in a plausible band with a
/// reasonable fit, mirroring the paper's "degree distributions follow the
/// power law" check. Small graphs give noisy fits, hence the loose defaults.
bool LooksScaleFree(const std::map<int64_t, size_t>& degree_counts,
                    double min_exponent = 1.2, double max_exponent = 4.5,
                    double min_r2 = 0.55);

}  // namespace gbda
