// gbda_serverd — the network serving front-end (docs/ARCHITECTURE.md,
// "Network serving"). A thin main around net/server.h: loads or generates a
// corpus, builds the offline index, starts a GbdaServer (frozen GbdaService
// by default, DynamicGbdaService with --dynamic=1) and serves the binary
// protocol of net/codec.h until SIGINT/SIGTERM or --duration elapses.
//
//   gbda_serverd [--profile=aids|fingerprint|grec|aasd] [--scale=F]
//                [--db=<transactions.txt>]       # instead of a profile
//                [--dynamic=0|1] [--port=N] [--port-file=<path>]
//                [--bind=ADDR] [--tau-max=N] [--pairs=N] [--seed=N]
//                [--threads=N] [--shards=N] [--workers=N]
//                [--max-batch=N] [--max-linger-micros=N] [--max-queue=N]
//                [--approximate=0|1] [--ann-degree=N]
//                [--metrics-port=N] [--metrics-port-file=<path>]
//                [--trace=0|1] [--trace-sample=N] [--slow-query-ms=N]
//                [--duration=SECONDS]            # 0 = run until signalled
//
// --approximate=1 warms the backend's proximity graph at startup so the
// first options.approximate query does not pay the build; approximate
// requests are still opt-in per query through the wire SearchOptions.
//
// With --port=0 (the default) the kernel picks an ephemeral port; scripts
// read it from --port-file (written atomically after the listener is bound —
// the handshake the CI smoke uses). On shutdown the server counters are
// printed as one JSON object on stdout, batch-size histogram and per-stage
// latency summaries included.
//
// --metrics-port=N starts the HTTP scrape endpoint of src/obs/exporter.h on
// that port (0 = ephemeral, read back via --metrics-port-file): GET /metrics
// answers Prometheus text exposition, /metrics.json the same snapshot as
// JSON. The server's and backend's counters are published into the global
// registry only here — library users stay unregistered. --trace/--trace-
// sample/--slow-query-ms override the GBDA_TRACE / GBDA_TRACE_SAMPLE /
// GBDA_SLOW_QUERY_MS environment knobs (see src/obs/trace.h).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gbda_index.h"
#include "datagen/dataset_profiles.h"
#include "graph/graph_io.h"
#include "net/server.h"
#include "obs/exporter.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"

using namespace gbda;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

struct Flags {
  std::string profile = "aids";
  double scale = 0.05;
  std::string db_path;
  bool dynamic = false;
  uint16_t port = 0;
  std::string port_file;
  std::string bind = "127.0.0.1";
  int64_t tau_max = 10;
  size_t sample_pairs = 2000;
  uint64_t seed = 0;
  size_t threads = 0;
  size_t shards = 0;
  bool approximate = false;
  uint32_t ann_degree = 0;  // 0 keeps the AnnBuildParams default
  net::ServerConfig server;
  double duration = 0.0;
  int32_t metrics_port = -1;  // -1 = no scrape endpoint; 0 = ephemeral
  std::string metrics_port_file;
  int32_t trace = -1;         // -1 = keep env/default
  int64_t trace_sample = -1;  // -1 = keep env/default
  int64_t slow_query_ms = -1;  // -1 = keep env/default
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: gbda_serverd [--profile=aids|fingerprint|grec|aasd] "
      "[--scale=F]\n"
      "                    [--db=<transactions.txt>] [--dynamic=0|1]\n"
      "                    [--port=N] [--port-file=<path>] [--bind=ADDR]\n"
      "                    [--tau-max=N] [--pairs=N] [--seed=N]\n"
      "                    [--threads=N] [--shards=N] [--workers=N]\n"
      "                    [--max-batch=N] [--max-linger-micros=N]\n"
      "                    [--max-queue=N] [--approximate=0|1]\n"
      "                    [--ann-degree=N] [--metrics-port=N]\n"
      "                    [--metrics-port-file=<path>] [--trace=0|1]\n"
      "                    [--trace-sample=N] [--slow-query-ms=N]\n"
      "                    [--duration=SECONDS]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "gbda_serverd: %s\n", status.ToString().c_str());
  return 1;
}

Result<DatasetProfile> ProfileByName(const std::string& name, double scale) {
  if (name == "aids") return AidsProfile(scale);
  if (name == "fingerprint") return FingerprintProfile(scale);
  if (name == "grec") return GrecProfile(scale);
  if (name == "aasd") return AasdProfile(scale);
  return Status::InvalidArgument("unknown profile: " + name);
}

void PrintStats(const net::WireServerStats& s) {
  std::printf("{\n");
  std::printf("  \"tool\": \"gbda_serverd\",\n");
  std::printf("  \"connections_opened\": %llu,\n",
              static_cast<unsigned long long>(s.connections_opened));
  std::printf("  \"connections_closed\": %llu,\n",
              static_cast<unsigned long long>(s.connections_closed));
  std::printf("  \"frames_received\": %llu,\n",
              static_cast<unsigned long long>(s.frames_received));
  std::printf("  \"decode_errors\": %llu,\n",
              static_cast<unsigned long long>(s.decode_errors));
  std::printf("  \"requests_accepted\": %llu,\n",
              static_cast<unsigned long long>(s.requests_accepted));
  std::printf("  \"rejected_overloaded\": %llu,\n",
              static_cast<unsigned long long>(s.rejected_overloaded));
  std::printf("  \"rejected_deadline\": %llu,\n",
              static_cast<unsigned long long>(s.rejected_deadline));
  std::printf("  \"rejected_invalid\": %llu,\n",
              static_cast<unsigned long long>(s.rejected_invalid));
  std::printf("  \"responses_sent\": %llu,\n",
              static_cast<unsigned long long>(s.responses_sent));
  std::printf("  \"batches_executed\": %llu,\n",
              static_cast<unsigned long long>(s.batches_executed));
  std::printf("  \"queue_depth_peak\": %llu,\n",
              static_cast<unsigned long long>(s.queue_depth_peak));
  std::printf("  \"batch_size_histogram\": [");
  for (size_t i = 0; i < s.batch_size_histogram.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(s.batch_size_histogram[i]));
  }
  std::printf("],\n");
  std::printf("  \"stage_latency_micros\": {");
  for (size_t i = 0; i < s.stage_latency.size(); ++i) {
    const net::WireStageStats& st = s.stage_latency[i];
    std::printf(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"p50\": %llu, \"p99\": %llu, \"p999\": %llu}",
        i == 0 ? "" : ",",
        obs::QueryStageName(static_cast<obs::QueryStage>(i)),
        static_cast<unsigned long long>(st.count),
        static_cast<unsigned long long>(st.sum_micros),
        static_cast<unsigned long long>(st.min_micros),
        static_cast<unsigned long long>(st.max_micros),
        static_cast<unsigned long long>(st.p50_micros),
        static_cast<unsigned long long>(st.p99_micros),
        static_cast<unsigned long long>(st.p999_micros));
  }
  std::printf("\n  }\n}\n");
}

// Atomic (tmp + rename) write of "<port>\n", so a poller never reads a
// partial number. Shared by --port-file and --metrics-port-file.
Status WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write port file: " + tmp);
  }
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename port file into place: " + path);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (FlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argv[i], "--db", &v)) {
      flags.db_path = v;
    } else if (FlagValue(argv[i], "--dynamic", &v)) {
      flags.dynamic = v != "0" && v != "false";
    } else if (FlagValue(argv[i], "--port", &v)) {
      flags.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      flags.port_file = v;
    } else if (FlagValue(argv[i], "--bind", &v)) {
      flags.bind = v;
    } else if (FlagValue(argv[i], "--tau-max", &v)) {
      flags.tau_max = std::strtoll(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--pairs", &v)) {
      flags.sample_pairs =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--threads", &v)) {
      flags.threads = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--shards", &v)) {
      flags.shards = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--workers", &v)) {
      flags.server.num_workers =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--max-batch", &v)) {
      flags.server.max_batch =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--max-linger-micros", &v)) {
      flags.server.max_linger_micros = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--max-queue", &v)) {
      flags.server.max_queue =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--approximate", &v)) {
      flags.approximate = v != "0" && v != "false";
    } else if (FlagValue(argv[i], "--ann-degree", &v)) {
      flags.ann_degree =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--metrics-port", &v)) {
      flags.metrics_port =
          static_cast<int32_t>(std::strtol(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--metrics-port-file", &v)) {
      flags.metrics_port_file = v;
    } else if (FlagValue(argv[i], "--trace", &v)) {
      flags.trace = (v != "0" && v != "false") ? 1 : 0;
    } else if (FlagValue(argv[i], "--trace-sample", &v)) {
      flags.trace_sample = std::strtoll(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--slow-query-ms", &v)) {
      flags.slow_query_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--duration", &v)) {
      flags.duration = std::strtod(v.c_str(), nullptr);
    } else {
      return Usage();
    }
  }

  // Tracing knobs: flags override the GBDA_TRACE / GBDA_TRACE_SAMPLE /
  // GBDA_SLOW_QUERY_MS environment (read by GetTraceConfig on first use).
  if (flags.trace >= 0 || flags.trace_sample >= 0 || flags.slow_query_ms >= 0) {
    obs::TraceConfig trace_config = obs::GetTraceConfig();
    if (flags.trace >= 0) trace_config.enabled = flags.trace != 0;
    if (flags.trace_sample > 0) {
      trace_config.sample_every = static_cast<uint32_t>(flags.trace_sample);
    }
    if (flags.slow_query_ms >= 0) {
      trace_config.slow_query_micros =
          static_cast<uint64_t>(flags.slow_query_ms) * 1000;
    }
    obs::SetTraceConfig(trace_config);
  }

  // ---- The corpus: a transaction file or a generated Table III profile ----
  GraphDatabase db;
  GbdaIndexOptions index_options;
  index_options.tau_max = flags.tau_max;
  index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
  if (!flags.db_path.empty()) {
    Result<GraphDatabase> loaded = ReadTransactionFile(flags.db_path);
    if (!loaded.ok()) return Fail(loaded.status());
    db = std::move(*loaded);
  } else {
    Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
    if (!profile.ok()) return Fail(profile.status());
    if (flags.seed != 0) profile->seed = flags.seed;
    Result<GeneratedDataset> dataset = GenerateDataset(*profile);
    if (!dataset.ok()) return Fail(dataset.status());
    db = std::move(dataset->db);
    index_options.model_vertex_labels =
        static_cast<int64_t>(profile->num_vertex_labels);
    index_options.model_edge_labels =
        static_cast<int64_t>(profile->num_edge_labels);
  }
  std::fprintf(stderr, "gbda_serverd: corpus ready (%zu graphs)\n", db.size());

  flags.server.bind_address = flags.bind;
  flags.server.port = flags.port;

  ServiceOptions service_options;
  service_options.num_threads = flags.threads;
  service_options.num_shards = flags.shards;
  if (flags.ann_degree != 0) {
    service_options.ann_build.graph_degree = flags.ann_degree;
  }

  // ---- Offline stage + backend + server ----------------------------------
  // Frozen path keeps index + service alive for the server lifetime.
  std::unique_ptr<GbdaIndex> index;
  std::unique_ptr<GbdaService> frozen;
  std::unique_ptr<DynamicGbdaService> dynamic;
  std::unique_ptr<net::GbdaServer> server;
  if (flags.dynamic) {
    DynamicServiceOptions dyn_options;
    dyn_options.service = service_options;
    Result<std::unique_ptr<DynamicGbdaService>> created =
        DynamicGbdaService::Create(std::move(db), index_options, dyn_options);
    if (!created.ok()) return Fail(created.status());
    dynamic = std::move(*created);
    if (flags.approximate) {
      Status warmed = dynamic->WarmAnnGraph();
      if (!warmed.ok()) return Fail(warmed);
      std::fprintf(stderr, "gbda_serverd: proximity graph warmed\n");
    }
    Result<std::unique_ptr<net::GbdaServer>> started =
        net::GbdaServer::Serve(dynamic.get(), flags.server);
    if (!started.ok()) return Fail(started.status());
    server = std::move(*started);
  } else {
    Result<GbdaIndex> built = GbdaIndex::Build(db, index_options);
    if (!built.ok()) return Fail(built.status());
    index = std::make_unique<GbdaIndex>(std::move(*built));
    Result<std::unique_ptr<GbdaService>> created =
        GbdaService::Create(&db, index.get(), service_options);
    if (!created.ok()) return Fail(created.status());
    frozen = std::move(*created);
    if (flags.approximate) {
      Status warmed = frozen->WarmAnnGraph();
      if (!warmed.ok()) return Fail(warmed);
      std::fprintf(stderr, "gbda_serverd: proximity graph warmed\n");
    }
    Result<std::unique_ptr<net::GbdaServer>> started =
        net::GbdaServer::Serve(frozen.get(), flags.server);
    if (!started.ok()) return Fail(started.status());
    server = std::move(*started);
  }

  std::fprintf(stderr, "gbda_serverd: listening on %s:%u (%s backend)\n",
               flags.bind.c_str(), server->port(),
               flags.dynamic ? "dynamic" : "frozen");
  if (!flags.port_file.empty()) {
    Status wrote = WritePortFile(flags.port_file, server->port());
    if (!wrote.ok()) return Fail(wrote);
  }

  // ---- Metrics exposition -------------------------------------------------
  // Collectors publish the server's and backend's own counters into the
  // global registry for exactly this process's lifetime; the exporter then
  // serves /metrics (Prometheus text) and /metrics.json over HTTP.
  obs::CollectorHandle server_collector(
      &obs::MetricsRegistry::Global(),
      [srv = server.get()](std::vector<obs::MetricFamily>* out) {
        srv->CollectMetrics("", out);
      });
  obs::CollectorHandle service_collector(
      &obs::MetricsRegistry::Global(),
      [frozen_ptr = frozen.get(),
       dynamic_ptr = dynamic.get()](std::vector<obs::MetricFamily>* out) {
        if (dynamic_ptr != nullptr) {
          dynamic_ptr->CollectMetrics("backend=\"dynamic\"", out);
        } else {
          frozen_ptr->CollectMetrics("backend=\"frozen\"", out);
        }
      });
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (flags.metrics_port >= 0) {
    obs::ExporterOptions exporter_options;
    exporter_options.host = flags.bind;
    exporter_options.port = static_cast<uint16_t>(flags.metrics_port);
    Result<std::unique_ptr<obs::MetricsExporter>> started =
        obs::MetricsExporter::Start(&obs::MetricsRegistry::Global(),
                                    exporter_options);
    if (!started.ok()) return Fail(started.status());
    exporter = std::move(*started);
    std::fprintf(stderr, "gbda_serverd: metrics on http://%s:%u/metrics\n",
                 flags.bind.c_str(), exporter->port());
    if (!flags.metrics_port_file.empty()) {
      Status wrote = WritePortFile(flags.metrics_port_file, exporter->port());
      if (!wrote.ok()) return Fail(wrote);
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const auto start = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (flags.duration > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= flags.duration) break;
    }
  }

  server->Shutdown();
  PrintStats(server->stats());
  return 0;
}
