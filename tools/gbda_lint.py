#!/usr/bin/env python3
"""gbda_lint: machine-checked repository invariants.

Checks (each with an actionable message and a nonzero exit on violation):

  layering     The module DAG declared in src/CMakeLists.txt's comment and
               each module's target_link_libraries must agree with the
               actual #include edges: a file in src/<m>/ may include only
               headers of <m> itself or of modules in the transitive
               closure of gbda_<m>'s declared gbda_* link deps. The
               declared graph must also be acyclic.

  intrinsics   AVX2 must stay containable: <immintrin.h> and _mm256*/
               _mm_* intrinsics may appear only in the cpuid-gated
               src/common/kernels_avx2.cc, and no CMakeLists may apply
               -mavx2 to any other source.

  determinism  Scan-path code in src/core must stay deterministic and
               replayable: rand(, std::random_device and wall-clock reads
               (std::chrono::system_clock, time(nullptr), gettimeofday)
               are banned there. Seeded gbda RNGs and the monotonic timer
               in common/ are the sanctioned alternatives.

  tests        tests/CMakeLists.txt registers test binaries by globbing
               *_test.cc, so a TEST()-containing file that does not match
               the glob silently never runs. Every file under tests/ that
               defines a gtest case must be named *_test.cc.

Usage: tools/gbda_lint.py [--root DIR] [--check NAME ...]
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = (".h", ".cc")

# tests/lint_fixtures/ holds miniature repo trees that deliberately violate
# these invariants (the linter's own regression tests); linting the real
# tree must not descend into them.
FIXTURE_DIR = "lint_fixtures"

# The one translation unit allowed to contain AVX2 intrinsics (relative to
# the repo root). kernels.cc dispatches into it behind a cpuid check.
AVX2_TU = "src/common/kernels_avx2.cc"

INTRINSIC_RE = re.compile(r"\bimmintrin\.h\b|\b_mm256_\w+|\b_mm_\w+")

NONDETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
]

GTEST_CASE_RE = re.compile(r"^\s*(TEST|TEST_F|TEST_P|TYPED_TEST)\s*\(", re.MULTILINE)

LINK_RE = re.compile(
    r"target_link_libraries\s*\(\s*(gbda_\w+)\s+(?:PUBLIC|PRIVATE|INTERFACE)?\s*([^)]*)\)",
    re.MULTILINE,
)


def strip_comments_and_strings(text):
    """Removes //, /* */ comments and string/char literals so a pattern in a
    comment or a log message never trips a check."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            # Preserve line numbers through the stripped block.
            block = text[i : n if j < 0 else j + 2]
            out.append("\n" * block.count("\n"))
            i = n if j < 0 else j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(quote + quote)
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_sources(root, subdir):
    base = root / subdir
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        # Relative to the lint root: a fixture tree being linted AS the root
        # must still have its own files visited.
        if FIXTURE_DIR in path.relative_to(root).parts:
            continue
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


class Linter:
    def __init__(self, root):
        self.root = Path(root)
        self.errors = []

    def error(self, path, line, message):
        rel = path.relative_to(self.root) if path is not None else "<repo>"
        loc = f"{rel}:{line}" if line else f"{rel}"
        self.errors.append(f"{loc}: {message}")

    # -- layering -----------------------------------------------------------

    def declared_deps(self):
        """Module -> set of gbda modules it declares via
        target_link_libraries in src/<module>/CMakeLists.txt."""
        deps = {}
        src = self.root / "src"
        if not src.is_dir():
            return deps
        for cmake in sorted(src.glob("*/CMakeLists.txt")):
            module = cmake.parent.name
            deps.setdefault(module, set())
            for match in LINK_RE.finditer(cmake.read_text()):
                target, libs = match.groups()
                if target != f"gbda_{module}":
                    continue
                for lib in libs.split():
                    if lib.startswith("gbda_") and lib != "gbda_build_flags":
                        dep = lib[len("gbda_") :]
                        if dep != module:
                            deps[module].add(dep)
        return deps

    def check_layering(self):
        deps = self.declared_deps()
        if not deps:
            self.error(self.root / "src", 0, "layering: no module CMakeLists found")
            return

        # Acyclicity of the declared graph (DFS three-color).
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {m: WHITE for m in deps}

        def visit(m, stack):
            color[m] = GRAY
            for d in sorted(deps.get(m, ())):
                if d not in deps:
                    continue
                if color[d] == GRAY:
                    cycle = " -> ".join(stack + [m, d])
                    self.error(
                        self.root / "src" / m / "CMakeLists.txt",
                        0,
                        f"layering: dependency cycle among modules: {cycle}",
                    )
                elif color[d] == WHITE:
                    visit(d, stack + [m])
            color[m] = BLACK

        for m in sorted(deps):
            if color[m] == WHITE:
                visit(m, [])

        # Transitive closure: PUBLIC link deps propagate.
        closure = {}

        def close(m, seen):
            if m in closure:
                return closure[m]
            if m in seen:
                return set()  # cycle already reported above
            seen.add(m)
            result = set()
            for d in deps.get(m, ()):
                result.add(d)
                result |= close(d, seen)
            closure[m] = result
            return result

        for m in deps:
            close(m, set())

        include_re = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
        for module in sorted(deps):
            allowed = {module} | closure[module]
            for path in iter_sources(self.root, f"src/{module}"):
                text = path.read_text(errors="replace")
                for match in include_re.finditer(text):
                    header = match.group(1)
                    top = header.split("/", 1)[0]
                    if top not in deps:
                        continue  # not a module-qualified include
                    if top not in allowed:
                        line = text.count("\n", 0, match.start()) + 1
                        self.error(
                            path,
                            line,
                            f'layering: module "{module}" includes "{header}" but '
                            f"gbda_{module} does not link gbda_{top} (directly or "
                            f"transitively). Either this include violates the module "
                            f"DAG in src/CMakeLists.txt, or the dependency must be "
                            f"declared in src/{module}/CMakeLists.txt.",
                        )

    # -- intrinsics containment --------------------------------------------

    def check_intrinsics(self):
        allowed = self.root / AVX2_TU
        for subdir in ("src", "tools", "bench", "examples"):
            for path in iter_sources(self.root, subdir):
                if path == allowed:
                    continue
                text = strip_comments_and_strings(path.read_text(errors="replace"))
                match = INTRINSIC_RE.search(text)
                if match:
                    line = text.count("\n", 0, match.start()) + 1
                    self.error(
                        path,
                        line,
                        f'intrinsics: "{match.group(0)}" outside {AVX2_TU}. AVX2 '
                        f"code must live in that cpuid-gated TU (the only one "
                        f"compiled with -mavx2) and be reached via the dispatch "
                        f"table in common/kernels.h.",
                    )
        # -mavx2 may be applied only inside src/common/CMakeLists.txt.
        for cmake in sorted(self.root.glob("**/CMakeLists.txt")):
            rel_parts = cmake.relative_to(self.root).parts
            # Skip build trees (any build* dir: FetchContent'd third-party
            # sources live there), VCS metadata and the lint fixtures.
            if any(
                p.startswith("build") or p in (".git", FIXTURE_DIR)
                for p in rel_parts
            ):
                continue
            text = cmake.read_text(errors="replace")
            if "-mavx2" not in text:
                continue
            if cmake != self.root / "src/common/CMakeLists.txt":
                self.error(
                    cmake,
                    0,
                    "intrinsics: -mavx2 applied outside src/common/CMakeLists.txt; "
                    "only kernels_avx2.cc may be built with it.",
                )

    # -- determinism in src/core -------------------------------------------

    def check_determinism(self):
        for path in iter_sources(self.root, "src/core"):
            text = strip_comments_and_strings(path.read_text(errors="replace"))
            for pattern, label in NONDETERMINISM_PATTERNS:
                for match in pattern.finditer(text):
                    line = text.count("\n", 0, match.start()) + 1
                    self.error(
                        path,
                        line,
                        f"determinism: {label} in src/core. Scan results must be "
                        f"bit-identical across runs and serial/sharded execution; "
                        f"use the seeded RNG (common/rng.h) for sampling and the "
                        f"monotonic timer for latency measurements.",
                    )

    # -- test registration --------------------------------------------------

    def check_tests(self):
        tests = self.root / "tests"
        if not tests.is_dir():
            return
        for path in sorted(tests.rglob("*.cc")):
            if FIXTURE_DIR in path.relative_to(self.root).parts:
                continue
            if path.name.endswith("_test.cc"):
                continue
            text = strip_comments_and_strings(path.read_text(errors="replace"))
            match = GTEST_CASE_RE.search(text)
            if match:
                line = text.count("\n", 0, match.start()) + 1
                self.error(
                    path,
                    line,
                    f"tests: {path.name} defines gtest cases but does not match "
                    f'the "*_test.cc" glob in tests/CMakeLists.txt, so it is '
                    f"never built or run. Rename it to end in _test.cc.",
                )


CHECKS = {
    "layering": Linter.check_layering,
    "intrinsics": Linter.check_intrinsics,
    "determinism": Linter.check_determinism,
    "tests": Linter.check_tests,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--check",
        action="append",
        choices=sorted(CHECKS),
        help="run only the named check (repeatable; default: all)",
    )
    args = parser.parse_args()

    root = Path(args.root)
    if not root.is_dir():
        print(f"gbda_lint: no such directory: {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    for name in args.check or sorted(CHECKS):
        CHECKS[name](linter)

    if linter.errors:
        for err in linter.errors:
            print(err, file=sys.stderr)
        print(
            f"gbda_lint: {len(linter.errors)} violation(s) found", file=sys.stderr
        )
        return 1
    print("gbda_lint: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
