// gbda_indexctl — operator tooling for GBDA index artifacts
// (docs/ARCHITECTURE.md, "Storage engine"; quickstart in README.md).
//
//   gbda_indexctl build   --db=<transactions.txt> --out=<artifact>
//                         [--format=v3|v2] [--tau-max=N] [--sample-pairs=N]
//                         [--seed=N] [--eager-all-sizes]
//       Runs the offline stage over a transaction-format database file and
//       writes the artifact (v3 arena by default).
//
//   gbda_indexctl convert --in=<artifact> --out=<artifact> --to=v2|v3
//       Converts between the v2 decode-on-load stream and the v3 mmap
//       arena, either direction. The input version is detected from its
//       magic. Queries through the converted artifact are bit-identical to
//       queries through the source.
//
//   gbda_indexctl graph   --in=<v3 artifact> --out=<v3 artifact>
//                         [--ann-degree=N] [--ann-window=N]
//                         [--ann-alpha=F] [--ann-seed=N]
//       Builds the proximity graph for approximate candidate navigation
//       over the artifact's branch fingerprints and writes a copy carrying
//       it as the optional ann_graph section (src/ann). The canonical
//       sections are byte-identical to the input's, so exhaustive queries
//       through the output are bit-identical to the input.
//
//   gbda_indexctl inspect <artifact>
//       Prints a JSON summary (version, header fields, v3 section table,
//       ann_graph details when present).
//
//   gbda_indexctl verify <artifact>
//       Full integrity check: structural validation plus every CRC32
//       (the v3 per-section sums — including trailing optional sections
//       such as ann_graph — or the v2 footer). Exits non-zero on the
//       first failure, printing the offending section and byte offset.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "ann/proximity_graph.h"
#include "core/gbda_index.h"
#include "graph/graph_io.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

using namespace gbda;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gbda_indexctl build   --db=<transactions.txt> --out=<path>"
               " [--format=v3|v2]\n"
               "                        [--tau-max=N] [--sample-pairs=N]"
               " [--seed=N] [--eager-all-sizes]\n"
               "                        [--ann] [--ann-degree=N]"
               " [--ann-window=N] [--ann-alpha=F] [--ann-seed=N]\n"
               "  gbda_indexctl convert --in=<path> --out=<path> --to=v2|v3\n"
               "  gbda_indexctl graph   --in=<v3 path> --out=<v3 path>"
               " [--ann-degree=N] [--ann-window=N]\n"
               "                        [--ann-alpha=F] [--ann-seed=N]\n"
               "  gbda_indexctl inspect <path>\n"
               "  gbda_indexctl verify  <path>\n");
  return 2;
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "gbda_indexctl: %s\n", status.ToString().c_str());
  return 1;
}

/// First 4 bytes decide the artifact family ("GBDA" stream vs "GBA3" arena).
Result<uint32_t> ReadMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) return Status::InvalidArgument("file too small: " + path);
  return magic;
}

Status WriteArtifact(const IndexReader& index, const std::string& format,
                     const std::string& path) {
  if (format == "v3") return WriteArenaFile(index, path);
  if (format == "v2") {
    // The v2 writer lives on the owning index; materialize when needed.
    if (const auto* owned = dynamic_cast<const GbdaIndex*>(&index)) {
      return owned->SaveToFile(path);
    }
    const auto* view = dynamic_cast<const GbdaIndexView*>(&index);
    if (view == nullptr) {
      return Status::Internal("unknown index backing for v2 write");
    }
    Result<GbdaIndex> materialized = view->Materialize();
    if (!materialized.ok()) return materialized.status();
    return materialized->SaveToFile(path);
  }
  return Status::InvalidArgument("unknown artifact format: " + format +
                                 " (expected v2 or v3)");
}

/// Parses the shared --ann-* knobs; returns false on an unrecognized flag.
bool AnnFlagValue(const char* arg, AnnBuildParams* params) {
  std::string v;
  if (FlagValue(arg, "--ann-degree", &v)) {
    params->graph_degree =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else if (FlagValue(arg, "--ann-window", &v)) {
    params->build_window =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else if (FlagValue(arg, "--ann-alpha", &v)) {
    params->alpha = std::strtod(v.c_str(), nullptr);
  } else if (FlagValue(arg, "--ann-seed", &v)) {
    params->seed = std::strtoull(v.c_str(), nullptr, 10);
  } else {
    return false;
  }
  return true;
}

int RunBuild(int argc, char** argv) {
  std::string db_path, out_path, format = "v3", v;
  GbdaIndexOptions options;
  bool with_ann = false;
  AnnBuildParams ann_params;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--db", &v)) {
      db_path = v;
    } else if (FlagValue(argv[i], "--out", &v)) {
      out_path = v;
    } else if (FlagValue(argv[i], "--format", &v)) {
      format = v;
    } else if (FlagValue(argv[i], "--tau-max", &v)) {
      options.tau_max = std::strtoll(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--sample-pairs", &v)) {
      options.gbd_prior.num_sample_pairs =
          std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--seed", &v)) {
      options.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--eager-all-sizes") == 0) {
      options.eager_all_sizes = true;
    } else if (std::strcmp(argv[i], "--ann") == 0) {
      with_ann = true;
    } else if (AnnFlagValue(argv[i], &ann_params)) {
      with_ann = true;  // an --ann-* knob implies --ann
    } else {
      return Usage();
    }
  }
  if (db_path.empty() || out_path.empty()) return Usage();
  if (with_ann && format != "v3") {
    return Fail(Status::InvalidArgument(
        "--ann requires --format=v3 (the v2 stream has no ann_graph "
        "section)"));
  }

  Result<GraphDatabase> db = ReadTransactionFile(db_path);
  if (!db.ok()) return Fail(db.status());
  Result<GbdaIndex> index = GbdaIndex::Build(*db, options);
  if (!index.ok()) return Fail(index.status());
  if (with_ann) {
    Result<ProximityGraph> graph =
        BuildProximityGraph(FingerprintStore::FromIndex(*index), ann_params);
    if (!graph.ok()) return Fail(graph.status());
    Status written = WriteArenaFile(*index, out_path, &*graph);
    if (!written.ok()) return Fail(written);
    std::printf(
        "built v3 artifact %s: %zu graphs, tau_max=%lld, ann_graph "
        "(degree<=%u, %llu edges)\n",
        out_path.c_str(), index->num_graphs(),
        static_cast<long long>(index->tau_max()), graph->degree_bound,
        static_cast<unsigned long long>(graph->neighbors.size()));
    return 0;
  }
  Status written = WriteArtifact(*index, format, out_path);
  if (!written.ok()) return Fail(written);
  std::printf("built %s artifact %s: %zu graphs, tau_max=%lld\n",
              format.c_str(), out_path.c_str(), index->num_graphs(),
              static_cast<long long>(index->tau_max()));
  return 0;
}

int RunGraph(int argc, char** argv) {
  std::string in_path, out_path, v;
  AnnBuildParams ann_params;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--in", &v)) {
      in_path = v;
    } else if (FlagValue(argv[i], "--out", &v)) {
      out_path = v;
    } else if (AnnFlagValue(argv[i], &ann_params)) {
    } else {
      return Usage();
    }
  }
  if (in_path.empty() || out_path.empty()) return Usage();

  Result<uint32_t> magic = ReadMagic(in_path);
  if (!magic.ok()) return Fail(magic.status());
  if (*magic != kArenaMagic) {
    return Fail(Status::InvalidArgument(
        "graph: input must be a v3 arena artifact (convert first): " +
        in_path));
  }
  Result<GbdaIndexView> view = GbdaIndexView::Open(in_path);
  if (!view.ok()) return Fail(view.status());
  Result<ProximityGraph> graph =
      BuildProximityGraph(FingerprintStore::FromIndex(*view), ann_params);
  if (!graph.ok()) return Fail(graph.status());
  Status written = WriteArenaFile(*view, out_path, &*graph);
  if (!written.ok()) return Fail(written);
  std::printf(
      "wrote %s: %zu graphs with ann_graph (degree<=%u, %llu edges, "
      "entry=%u)\n",
      out_path.c_str(), view->num_graphs(), graph->degree_bound,
      static_cast<unsigned long long>(graph->neighbors.size()),
      graph->entry_point);
  return 0;
}

int RunConvert(int argc, char** argv) {
  std::string in_path, out_path, to, v;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--in", &v)) {
      in_path = v;
    } else if (FlagValue(argv[i], "--out", &v)) {
      out_path = v;
    } else if (FlagValue(argv[i], "--to", &v)) {
      to = v;
    } else {
      return Usage();
    }
  }
  if (in_path.empty() || out_path.empty() || to.empty()) return Usage();

  Result<uint32_t> magic = ReadMagic(in_path);
  if (!magic.ok()) return Fail(magic.status());
  if (*magic == kIndexV2Magic) {
    Result<GbdaIndex> index = GbdaIndex::LoadFromFile(in_path);
    if (!index.ok()) return Fail(index.status());
    Status written = WriteArtifact(*index, to, out_path);
    if (!written.ok()) return Fail(written);
  } else if (*magic == kArenaMagic) {
    Result<GbdaIndexView> view = GbdaIndexView::Open(in_path);
    if (!view.ok()) return Fail(view.status());
    Status written = WriteArtifact(*view, to, out_path);
    if (!written.ok()) return Fail(written);
  } else {
    return Fail(Status::InvalidArgument("not a GBDA artifact: " + in_path));
  }
  std::printf("converted %s -> %s (%s)\n", in_path.c_str(), out_path.c_str(),
              to.c_str());
  return 0;
}

void PrintHeaderJson(const char* format, uint64_t file_bytes,
                     const GbdaIndexOptions& options, int64_t lv, int64_t le,
                     double avg_vertices, uint64_t num_graphs) {
  std::printf(
      "  \"format\": \"%s\",\n"
      "  \"file_bytes\": %llu,\n"
      "  \"num_graphs\": %llu,\n"
      "  \"tau_max\": %lld,\n"
      "  \"num_vertex_labels\": %lld,\n"
      "  \"num_edge_labels\": %lld,\n"
      "  \"avg_vertices\": %.6f,\n"
      "  \"sample_pairs\": %llu,\n"
      "  \"seed\": %llu",
      format, static_cast<unsigned long long>(file_bytes),
      static_cast<unsigned long long>(num_graphs),
      static_cast<long long>(options.tau_max), static_cast<long long>(lv),
      static_cast<long long>(le), avg_vertices,
      static_cast<unsigned long long>(options.gbd_prior.num_sample_pairs),
      static_cast<unsigned long long>(options.seed));
}

int RunInspect(const std::string& path) {
  Result<uint32_t> magic = ReadMagic(path);
  if (!magic.ok()) return Fail(magic.status());
  if (*magic == kIndexV2Magic) {
    Result<GbdaIndex> index = GbdaIndex::LoadFromFile(path);
    if (!index.ok()) return Fail(index.status());
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::printf("{\n");
    PrintHeaderJson("v2", static_cast<uint64_t>(in.tellg()), index->options(),
                    index->num_vertex_labels(), index->num_edge_labels(),
                    index->avg_vertices(), index->num_graphs());
    std::printf("\n}\n");
    return 0;
  }
  if (*magic != kArenaMagic) {
    return Fail(Status::InvalidArgument("not a GBDA artifact: " + path));
  }
  Result<MappedFile> mapped = MappedFile::OpenReadOnly(path, false);
  if (!mapped.ok()) return Fail(mapped.status());
  Result<ArenaInfo> info = ParseArenaHeader(
      std::string_view(mapped->data(), mapped->size()), path);
  if (!info.ok()) return Fail(info.status());
  std::printf("{\n");
  PrintHeaderJson("v3", info->file_bytes, info->options,
                  info->num_vertex_labels, info->num_edge_labels,
                  info->avg_vertices, info->num_graphs);
  std::printf(
      ",\n  \"total_branches\": %llu,\n  \"total_labels\": %llu,\n"
      "  \"sections\": [\n",
      static_cast<unsigned long long>(info->total_branches),
      static_cast<unsigned long long>(info->total_labels));
  for (size_t s = 0; s < info->sections.size(); ++s) {
    const ArenaSectionInfo& sec = info->sections[s];
    std::printf(
        "    {\"name\": \"%s\", \"offset\": %llu, \"length\": %llu, "
        "\"align\": %llu, \"crc32\": \"%08x\"}%s\n",
        ArenaSectionName(sec.id), static_cast<unsigned long long>(sec.offset),
        static_cast<unsigned long long>(sec.length),
        static_cast<unsigned long long>(sec.offset % kArenaSectionAlign == 0
                                            ? kArenaSectionAlign
                                            : sec.offset & ~(sec.offset - 1)),
        sec.crc32, s + 1 < info->sections.size() ? "," : "");
  }
  std::printf("  ]");
  if (info->FindSection(kSecGraphSizes) != nullptr) {
    const ArenaSectionInfo* uniq = info->FindSection(kSecFpUnique);
    std::printf(
        ",\n  \"columns\": {\"graph_sizes\": true, \"fp_keys\": true, "
        "\"exactness_directory\": %s, \"num_distinct_fingerprints\": %llu}",
        uniq != nullptr ? "true" : "false",
        static_cast<unsigned long long>(uniq != nullptr ? uniq->length / 8
                                                        : 0));
  }
  if (const ArenaSectionInfo* sec = info->FindSection(kSecAnnGraph)) {
    Result<ProximityGraphRef> graph = ParseProximityGraphSection(
        mapped->data() + sec->offset, static_cast<size_t>(sec->length),
        info->num_graphs, path + " [ann_graph]");
    if (graph.ok()) {
      std::printf(
          ",\n  \"ann_graph\": {\"nodes\": %llu, \"edges\": %llu, "
          "\"degree_bound\": %u, \"entry_point\": %u}",
          static_cast<unsigned long long>(graph->num_nodes),
          static_cast<unsigned long long>(graph->num_edges),
          graph->degree_bound, graph->entry_point);
    } else {
      std::printf(",\n  \"ann_graph\": {\"error\": \"%s\"}",
                  graph.status().ToString().c_str());
    }
  }
  std::printf("\n}\n");
  return 0;
}

int RunVerify(const std::string& path) {
  Result<uint32_t> magic = ReadMagic(path);
  if (!magic.ok()) return Fail(magic.status());
  if (*magic == kIndexV2Magic) {
    // The v2 loader is the verifier: full structural decode plus the CRC
    // footer when present.
    Result<GbdaIndex> index = GbdaIndex::LoadFromFile(path);
    if (!index.ok()) return Fail(index.status());
    std::printf("%s: OK (v2 stream, %zu graphs)\n", path.c_str(),
                index->num_graphs());
    return 0;
  }
  if (*magic != kArenaMagic) {
    return Fail(Status::InvalidArgument("not a GBDA artifact: " + path));
  }
  GbdaIndexView::OpenOptions options;
  options.verify_checksums = true;
  options.prefetch = true;
  Result<GbdaIndexView> view = GbdaIndexView::Open(path, options);
  if (!view.ok()) return Fail(view.status());
  std::printf("%s: OK (v3 arena, %zu graphs, %llu branches)\n", path.c_str(),
              view->num_graphs(),
              static_cast<unsigned long long>(view->total_branches()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "build") return RunBuild(argc, argv);
  if (command == "convert") return RunConvert(argc, argv);
  if (command == "graph") return RunGraph(argc, argv);
  if (command == "inspect" && argc == 3) return RunInspect(argv[2]);
  if (command == "verify" && argc == 3) return RunVerify(argv[2]);
  return Usage();
}
